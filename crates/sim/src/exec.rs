//! Per-kind interpretation under virtual time.
//!
//! Mirrors `askel-engine`'s interpreter exactly — same task granularity,
//! same event sequence, same dispatch order — with muscle durations metered
//! by the cost model and scheduling delegated to the discrete-event core in
//! `rt`/`sched`. Divergence between the two interpreters is a bug; the
//! facade crate property-tests them against each other and against the
//! sequential reference.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use askel_events::{EventInfo, Payload, Trace, When, Where};
use askel_skeletons::{Data, EvalError, InstanceId, KindTag, MuscleId, MuscleRole, Node, NodeKind};

use crate::rt::{SimCont, SimRt, Step};
use crate::SimError;

/// One skeleton instance's event identity — every event a node emits
/// shares the same `(node, trace, instance)` triple, so interpreters pass
/// this around instead of repeating the nine-argument `rt.emit` call.
struct Ev<'a> {
    node: &'a Arc<Node>,
    trace: &'a Trace,
    inst: InstanceId,
}

/// Shorthand constructor for [`Ev`].
fn ev<'a>(node: &'a Arc<Node>, trace: &'a Trace, inst: InstanceId) -> Ev<'a> {
    Ev { node, trace, inst }
}

impl Ev<'_> {
    /// Emits a single-payload event at the current virtual instant.
    fn one(&self, rt: &SimRt, when: When, wher: Where, info: EventInfo, data: &mut Data) {
        rt.emit(
            self.node,
            self.trace,
            self.inst,
            when,
            wher,
            info,
            &mut Payload::Single(data),
        );
    }

    /// Emits a many-payload event (split results, merge inputs).
    fn many(&self, rt: &SimRt, when: When, wher: Where, info: EventInfo, data: &mut Vec<Data>) {
        rt.emit(
            self.node,
            self.trace,
            self.inst,
            when,
            wher,
            info,
            &mut Payload::Many(data),
        );
    }
}

/// Schedules the execution of `node` on `data`; `cont` receives the result.
pub(crate) fn schedule_node(
    rt: &mut SimRt,
    node: &Arc<Node>,
    parent: Option<&Trace>,
    data: Data,
    cont: SimCont,
) {
    let inst = InstanceId::fresh();
    let trace = match parent {
        Some(t) => t.child(node.id, inst, node.tag()),
        None => Trace::root(node.id, inst, node.tag()),
    };
    let node = Arc::clone(node);
    match node.tag() {
        KindTag::Seq => sim_seq(rt, node, trace, inst, data, cont),
        KindTag::Farm => sim_farm(rt, node, trace, inst, data, cont),
        KindTag::Pipe => sim_pipe(rt, node, trace, inst, data, cont),
        KindTag::While => sim_while(rt, node, trace, inst, data, cont, 0),
        KindTag::If => sim_if(rt, node, trace, inst, data, cont),
        KindTag::For => sim_for(rt, node, trace, inst, data, cont),
        KindTag::Map => sim_map(rt, node, trace, inst, data, cont),
        KindTag::Fork => sim_fork(rt, node, trace, inst, data, cont),
        KindTag::DivideConquer => sim_dac(rt, node, trace, inst, data, cont),
    }
}

fn sim_seq(
    rt: &mut SimRt,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: SimCont,
) {
    rt.push_ready(
        node.placement.clone(),
        Box::new(move |rt| {
            let mut data = data;
            let e = ev(&node, &trace, inst);
            e.one(
                rt,
                When::Before,
                Where::Skeleton,
                EventInfo::None,
                &mut data,
            );
            let NodeKind::Seq { fe } = &node.kind else {
                unreachable!("tag checked by dispatcher")
            };
            let muscle = MuscleId::new(node.id, MuscleRole::Execute);
            let dur = rt.cost_of(muscle, 1, &*data);
            let fe = fe.clone();
            let Some(out) = rt.guard(move || fe.call(data)) else {
                return Step::Done;
            };
            Step::Busy {
                dur,
                then: Box::new(move |rt| {
                    let mut out = out;
                    let e = ev(&node, &trace, inst);
                    e.one(rt, When::After, Where::Skeleton, EventInfo::None, &mut out);
                    cont(rt, out);
                    Step::Done
                }),
            }
        }),
    );
}

fn sim_farm(
    rt: &mut SimRt,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    mut data: Data,
    cont: SimCont,
) {
    let e = ev(&node, &trace, inst);
    e.one(
        rt,
        When::Before,
        Where::Skeleton,
        EventInfo::None,
        &mut data,
    );
    e.one(
        rt,
        When::Before,
        Where::NestedSkeleton,
        EventInfo::ChildIndex(0),
        &mut data,
    );
    let NodeKind::Farm { inner } = &node.kind else {
        unreachable!("tag checked by dispatcher")
    };
    let inner = Arc::clone(inner);
    let node2 = Arc::clone(&node);
    let trace2 = trace.clone();
    schedule_node(
        rt,
        &inner,
        Some(&trace),
        data,
        Box::new(move |rt, mut out| {
            let e = ev(&node2, &trace2, inst);
            e.one(
                rt,
                When::After,
                Where::NestedSkeleton,
                EventInfo::ChildIndex(0),
                &mut out,
            );
            e.one(rt, When::After, Where::Skeleton, EventInfo::None, &mut out);
            cont(rt, out);
        }),
    );
}

fn sim_pipe(
    rt: &mut SimRt,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    mut data: Data,
    cont: SimCont,
) {
    let e = ev(&node, &trace, inst);
    e.one(
        rt,
        When::Before,
        Where::Skeleton,
        EventInfo::None,
        &mut data,
    );
    pipe_stage(rt, node, trace, inst, data, cont, 0);
}

fn pipe_stage(
    rt: &mut SimRt,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    mut data: Data,
    cont: SimCont,
    k: usize,
) {
    let NodeKind::Pipe { stages } = &node.kind else {
        unreachable!("tag checked by dispatcher")
    };
    let e = ev(&node, &trace, inst);
    if k == stages.len() {
        e.one(rt, When::After, Where::Skeleton, EventInfo::None, &mut data);
        cont(rt, data);
        return;
    }
    e.one(
        rt,
        When::Before,
        Where::NestedSkeleton,
        EventInfo::ChildIndex(k),
        &mut data,
    );
    let stage = Arc::clone(&stages[k]);
    let node2 = Arc::clone(&node);
    let trace2 = trace.clone();
    schedule_node(
        rt,
        &stage,
        Some(&trace),
        data,
        Box::new(move |rt, mut out| {
            let e = ev(&node2, &trace2, inst);
            e.one(
                rt,
                When::After,
                Where::NestedSkeleton,
                EventInfo::ChildIndex(k),
                &mut out,
            );
            pipe_stage(rt, node2, trace2, inst, out, cont, k + 1);
        }),
    );
}

fn sim_while(
    rt: &mut SimRt,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: SimCont,
    iter: usize,
) {
    rt.push_ready(
        node.placement.clone(),
        Box::new(move |rt| {
            let mut data = data;
            let e = ev(&node, &trace, inst);
            if iter == 0 {
                e.one(
                    rt,
                    When::Before,
                    Where::Skeleton,
                    EventInfo::None,
                    &mut data,
                );
            }
            let NodeKind::While { fc, .. } = &node.kind else {
                unreachable!("tag checked by dispatcher")
            };
            e.one(
                rt,
                When::Before,
                Where::Condition,
                EventInfo::None,
                &mut data,
            );
            let muscle = MuscleId::new(node.id, MuscleRole::Condition);
            let dur = rt.cost_of(muscle, 1, &*data);
            let fc = fc.clone();
            let Some(verdict) = rt.guard(|| fc.call(&data)) else {
                return Step::Done;
            };
            Step::Busy {
                dur,
                then: Box::new(move |rt| {
                    let mut data = data;
                    let e = ev(&node, &trace, inst);
                    e.one(
                        rt,
                        When::After,
                        Where::Condition,
                        EventInfo::ConditionResult(verdict),
                        &mut data,
                    );
                    if verdict {
                        e.one(
                            rt,
                            When::Before,
                            Where::NestedSkeleton,
                            EventInfo::ChildIndex(iter),
                            &mut data,
                        );
                        let NodeKind::While { inner, .. } = &node.kind else {
                            unreachable!()
                        };
                        let inner = Arc::clone(inner);
                        let node2 = Arc::clone(&node);
                        let trace2 = trace.clone();
                        schedule_node(
                            rt,
                            &inner,
                            Some(&trace),
                            data,
                            Box::new(move |rt, mut out| {
                                let e = ev(&node2, &trace2, inst);
                                e.one(
                                    rt,
                                    When::After,
                                    Where::NestedSkeleton,
                                    EventInfo::ChildIndex(iter),
                                    &mut out,
                                );
                                sim_while(rt, node2, trace2, inst, out, cont, iter + 1);
                            }),
                        );
                    } else {
                        e.one(rt, When::After, Where::Skeleton, EventInfo::None, &mut data);
                        cont(rt, data);
                    }
                    Step::Done
                }),
            }
        }),
    );
}

fn sim_if(
    rt: &mut SimRt,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: SimCont,
) {
    rt.push_ready(
        node.placement.clone(),
        Box::new(move |rt| {
            let mut data = data;
            let e = ev(&node, &trace, inst);
            e.one(
                rt,
                When::Before,
                Where::Skeleton,
                EventInfo::None,
                &mut data,
            );
            let NodeKind::If { fc, .. } = &node.kind else {
                unreachable!("tag checked by dispatcher")
            };
            e.one(
                rt,
                When::Before,
                Where::Condition,
                EventInfo::None,
                &mut data,
            );
            let muscle = MuscleId::new(node.id, MuscleRole::Condition);
            let dur = rt.cost_of(muscle, 1, &*data);
            let fc = fc.clone();
            let Some(verdict) = rt.guard(|| fc.call(&data)) else {
                return Step::Done;
            };
            Step::Busy {
                dur,
                then: Box::new(move |rt| {
                    let mut data = data;
                    let e = ev(&node, &trace, inst);
                    e.one(
                        rt,
                        When::After,
                        Where::Condition,
                        EventInfo::ConditionResult(verdict),
                        &mut data,
                    );
                    let NodeKind::If {
                        then_branch,
                        else_branch,
                        ..
                    } = &node.kind
                    else {
                        unreachable!()
                    };
                    let (branch, k) = if verdict {
                        (Arc::clone(then_branch), 0)
                    } else {
                        (Arc::clone(else_branch), 1)
                    };
                    e.one(
                        rt,
                        When::Before,
                        Where::NestedSkeleton,
                        EventInfo::ChildIndex(k),
                        &mut data,
                    );
                    let node2 = Arc::clone(&node);
                    let trace2 = trace.clone();
                    schedule_node(
                        rt,
                        &branch,
                        Some(&trace),
                        data,
                        Box::new(move |rt, mut out| {
                            let e = ev(&node2, &trace2, inst);
                            e.one(
                                rt,
                                When::After,
                                Where::NestedSkeleton,
                                EventInfo::ChildIndex(k),
                                &mut out,
                            );
                            e.one(rt, When::After, Where::Skeleton, EventInfo::None, &mut out);
                            cont(rt, out);
                        }),
                    );
                    Step::Done
                }),
            }
        }),
    );
}

fn sim_for(
    rt: &mut SimRt,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    mut data: Data,
    cont: SimCont,
) {
    let e = ev(&node, &trace, inst);
    e.one(
        rt,
        When::Before,
        Where::Skeleton,
        EventInfo::None,
        &mut data,
    );
    let NodeKind::For { n, .. } = &node.kind else {
        unreachable!("tag checked by dispatcher")
    };
    let n = *n;
    if n == 0 {
        e.one(rt, When::After, Where::Skeleton, EventInfo::None, &mut data);
        cont(rt, data);
        return;
    }
    for_iteration(rt, node, trace, inst, data, cont, 0, n);
}

#[allow(clippy::too_many_arguments)]
fn for_iteration(
    rt: &mut SimRt,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    mut data: Data,
    cont: SimCont,
    k: usize,
    n: usize,
) {
    let e = ev(&node, &trace, inst);
    e.one(
        rt,
        When::Before,
        Where::NestedSkeleton,
        EventInfo::Iteration(k),
        &mut data,
    );
    let NodeKind::For { inner, .. } = &node.kind else {
        unreachable!("tag checked by dispatcher")
    };
    let inner = Arc::clone(inner);
    let node2 = Arc::clone(&node);
    let trace2 = trace.clone();
    schedule_node(
        rt,
        &inner,
        Some(&trace),
        data,
        Box::new(move |rt, mut out| {
            let e = ev(&node2, &trace2, inst);
            e.one(
                rt,
                When::After,
                Where::NestedSkeleton,
                EventInfo::Iteration(k),
                &mut out,
            );
            if k + 1 < n {
                for_iteration(rt, node2, trace2, inst, out, cont, k + 1, n);
            } else {
                e.one(rt, When::After, Where::Skeleton, EventInfo::None, &mut out);
                cont(rt, out);
            }
        }),
    );
}

fn sim_map(
    rt: &mut SimRt,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: SimCont,
) {
    rt.push_ready(
        node.placement.clone(),
        Box::new(move |rt| {
            let mut data = data;
            let e = ev(&node, &trace, inst);
            e.one(
                rt,
                When::Before,
                Where::Skeleton,
                EventInfo::None,
                &mut data,
            );
            let NodeKind::Map { fs, .. } = &node.kind else {
                unreachable!("tag checked by dispatcher")
            };
            e.one(rt, When::Before, Where::Split, EventInfo::None, &mut data);
            let muscle = MuscleId::new(node.id, MuscleRole::Split);
            let dur = rt.cost_of(muscle, 1, &*data);
            let fs = fs.clone();
            let Some(parts) = rt.guard(move || fs.call(data)) else {
                return Step::Done;
            };
            Step::Busy {
                dur,
                then: Box::new(move |rt| {
                    let mut parts = parts;
                    let e = ev(&node, &trace, inst);
                    e.many(
                        rt,
                        When::After,
                        Where::Split,
                        EventInfo::SplitCardinality(parts.len()),
                        &mut parts,
                    );
                    fan_out(rt, node, trace, inst, parts, cont, |node, _| {
                        let NodeKind::Map { inner, .. } = &node.kind else {
                            unreachable!()
                        };
                        Arc::clone(inner)
                    });
                    Step::Done
                }),
            }
        }),
    );
}

fn sim_fork(
    rt: &mut SimRt,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: SimCont,
) {
    rt.push_ready(
        node.placement.clone(),
        Box::new(move |rt| {
            let mut data = data;
            let e = ev(&node, &trace, inst);
            e.one(
                rt,
                When::Before,
                Where::Skeleton,
                EventInfo::None,
                &mut data,
            );
            let NodeKind::Fork { fs, .. } = &node.kind else {
                unreachable!("tag checked by dispatcher")
            };
            e.one(rt, When::Before, Where::Split, EventInfo::None, &mut data);
            let muscle = MuscleId::new(node.id, MuscleRole::Split);
            let dur = rt.cost_of(muscle, 1, &*data);
            let fs = fs.clone();
            let Some(parts) = rt.guard(move || fs.call(data)) else {
                return Step::Done;
            };
            Step::Busy {
                dur,
                then: Box::new(move |rt| {
                    let mut parts = parts;
                    let e = ev(&node, &trace, inst);
                    e.many(
                        rt,
                        When::After,
                        Where::Split,
                        EventInfo::SplitCardinality(parts.len()),
                        &mut parts,
                    );
                    let NodeKind::Fork { inners, .. } = &node.kind else {
                        unreachable!()
                    };
                    if parts.len() != inners.len() {
                        rt.fail(SimError::Eval(EvalError::ForkArityMismatch {
                            node: node.id,
                            branches: inners.len(),
                            produced: parts.len(),
                        }));
                        return Step::Done;
                    }
                    fan_out(rt, node, trace, inst, parts, cont, |node, k| {
                        let NodeKind::Fork { inners, .. } = &node.kind else {
                            unreachable!()
                        };
                        Arc::clone(&inners[k])
                    });
                    Step::Done
                }),
            }
        }),
    );
}

fn sim_dac(
    rt: &mut SimRt,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    data: Data,
    cont: SimCont,
) {
    rt.push_ready(
        node.placement.clone(),
        Box::new(move |rt| {
            let mut data = data;
            let e = ev(&node, &trace, inst);
            e.one(
                rt,
                When::Before,
                Where::Skeleton,
                EventInfo::None,
                &mut data,
            );
            let NodeKind::DivideConquer { fc, .. } = &node.kind else {
                unreachable!("tag checked by dispatcher")
            };
            e.one(
                rt,
                When::Before,
                Where::Condition,
                EventInfo::None,
                &mut data,
            );
            let muscle = MuscleId::new(node.id, MuscleRole::Condition);
            let dur = rt.cost_of(muscle, 1, &*data);
            let fc = fc.clone();
            let Some(divide) = rt.guard(|| fc.call(&data)) else {
                return Step::Done;
            };
            Step::Busy {
                dur,
                then: Box::new(move |rt| {
                    let mut data = data;
                    let e = ev(&node, &trace, inst);
                    e.one(
                        rt,
                        When::After,
                        Where::Condition,
                        EventInfo::ConditionResult(divide),
                        &mut data,
                    );
                    if divide {
                        e.one(rt, When::Before, Where::Split, EventInfo::None, &mut data);
                        let NodeKind::DivideConquer { fs, .. } = &node.kind else {
                            unreachable!()
                        };
                        let muscle = MuscleId::new(node.id, MuscleRole::Split);
                        let dur = rt.cost_of(muscle, 1, &*data);
                        let fs = fs.clone();
                        let Some(parts) = rt.guard(move || fs.call(data)) else {
                            return Step::Done;
                        };
                        Step::Busy {
                            dur,
                            then: Box::new(move |rt| {
                                let mut parts = parts;
                                let e = ev(&node, &trace, inst);
                                e.many(
                                    rt,
                                    When::After,
                                    Where::Split,
                                    EventInfo::SplitCardinality(parts.len()),
                                    &mut parts,
                                );
                                if parts.is_empty() {
                                    rt.fail(SimError::Eval(EvalError::EmptySplit {
                                        node: node.id,
                                    }));
                                    return Step::Done;
                                }
                                // Children are new instances of this d&C node.
                                fan_out(rt, node, trace, inst, parts, cont, |node, _| {
                                    Arc::clone(node)
                                });
                                Step::Done
                            }),
                        }
                    } else {
                        e.one(
                            rt,
                            When::Before,
                            Where::NestedSkeleton,
                            EventInfo::ChildIndex(0),
                            &mut data,
                        );
                        let NodeKind::DivideConquer { inner, .. } = &node.kind else {
                            unreachable!()
                        };
                        let inner = Arc::clone(inner);
                        let node2 = Arc::clone(&node);
                        let trace2 = trace.clone();
                        schedule_node(
                            rt,
                            &inner,
                            Some(&trace),
                            data,
                            Box::new(move |rt, mut out| {
                                let e = ev(&node2, &trace2, inst);
                                e.one(
                                    rt,
                                    When::After,
                                    Where::NestedSkeleton,
                                    EventInfo::ChildIndex(0),
                                    &mut out,
                                );
                                e.one(rt, When::After, Where::Skeleton, EventInfo::None, &mut out);
                                cont(rt, out);
                            }),
                        );
                        Step::Done
                    }
                }),
            }
        }),
    );
}

/// Fans `parts` out to children, joins in order, schedules the merge task.
fn fan_out(
    rt: &mut SimRt,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    parts: Vec<Data>,
    cont: SimCont,
    pick_child: impl Fn(&Arc<Node>, usize) -> Arc<Node> + Copy + 'static,
) {
    if parts.is_empty() {
        schedule_merge(rt, node, trace, inst, Vec::new(), cont);
        return;
    }
    let n = parts.len();
    let join: Rc<RefCell<(Vec<Option<Data>>, usize)>> =
        Rc::new(RefCell::new(((0..n).map(|_| None).collect(), n)));
    let cont = Rc::new(RefCell::new(Some(cont)));
    for (k, mut part) in parts.into_iter().enumerate() {
        ev(&node, &trace, inst).one(
            rt,
            When::Before,
            Where::NestedSkeleton,
            EventInfo::ChildIndex(k),
            &mut part,
        );
        let child = pick_child(&node, k);
        let join = Rc::clone(&join);
        let cont = Rc::clone(&cont);
        let node2 = Arc::clone(&node);
        let trace2 = trace.clone();
        schedule_node(
            rt,
            &child,
            Some(&trace),
            part,
            Box::new(move |rt, mut out| {
                ev(&node2, &trace2, inst).one(
                    rt,
                    When::After,
                    Where::NestedSkeleton,
                    EventInfo::ChildIndex(k),
                    &mut out,
                );
                let finished = {
                    let mut j = join.borrow_mut();
                    debug_assert!(j.0[k].is_none(), "child {k} completed twice");
                    j.0[k] = Some(out);
                    j.1 -= 1;
                    j.1 == 0
                };
                if finished {
                    let results: Vec<Data> = join
                        .borrow_mut()
                        .0
                        .drain(..)
                        .map(|s| s.expect("join closed with missing slot"))
                        .collect();
                    let cont = cont.borrow_mut().take().expect("join completed twice");
                    schedule_merge(rt, node2, trace2, inst, results, cont);
                }
            }),
        );
    }
}

fn schedule_merge(
    rt: &mut SimRt,
    node: Arc<Node>,
    trace: Trace,
    inst: InstanceId,
    results: Vec<Data>,
    cont: SimCont,
) {
    rt.push_ready(
        node.placement.clone(),
        Box::new(move |rt| {
            let mut results = results;
            let e = ev(&node, &trace, inst);
            e.many(
                rt,
                When::Before,
                Where::Merge,
                EventInfo::None,
                &mut results,
            );
            let fm = match &node.kind {
                NodeKind::Map { fm, .. }
                | NodeKind::Fork { fm, .. }
                | NodeKind::DivideConquer { fm, .. } => fm.clone(),
                _ => unreachable!("merge scheduled on a kind without a merge muscle"),
            };
            let muscle = MuscleId::new(node.id, MuscleRole::Merge);
            let items = results.len();
            let dur = rt.cost_of(muscle, items, &results);
            let Some(out) = rt.guard(move || fm.call(results)) else {
                return Step::Done;
            };
            Step::Busy {
                dur,
                then: Box::new(move |rt| {
                    let mut out = out;
                    let e = ev(&node, &trace, inst);
                    e.one(rt, When::After, Where::Merge, EventInfo::None, &mut out);
                    e.one(rt, When::After, Where::Skeleton, EventInfo::None, &mut out);
                    cont(rt, out);
                    Step::Done
                }),
            }
        }),
    );
}
