//! Deterministic discrete-event simulation of skeleton execution.
//!
//! The paper's evaluation ran on a 12-core / 24-thread Xeon; the autonomic
//! *mechanism*, however, is platform independent (the paper says so
//! explicitly, §4/§6). This crate provides that platform as a simulator: it
//! interprets the same AST as `askel-engine`, emits the same events through
//! the same listener registry, and honours the same LIFO / no-preemption
//! scheduling discipline — but time is **virtual**: muscle durations come
//! from a [`cost::CostModel`] and a [`ManualClock`] advances
//! through a completion-event queue.
//!
//! Why this exists:
//!
//! * the evaluation figures (Figs. 5–7) need 24 hardware threads to
//!   reproduce; the simulator provides any LP on any host, deterministically;
//! * the autonomic controller (`askel-core`) is a plain event listener with
//!   an LP actuator, so the *identical* controller code runs against either
//!   engine — the simulator changes only where timestamps come from.
//!
//! Internally the simulator is a priority-queue **discrete-event
//! scheduler** ([`sched`]): completions and ready tasks are ordered by
//! virtual timestamp, and *same-timestamp* ties are broken by a pluggable
//! [`OrderingPolicy`]. `Deterministic` (the default) reproduces the
//! historical stable schedule byte-for-byte; `SeededRandom(seed)`
//! permutes exactly the genuinely-concurrent events, turning the
//! simulator into a replay-exact concurrency **fuzzer** for the
//! adapt/offload decision stack (set the `ASKEL_SIM_SEED` env var to
//! reproduce a failing seed from the command line). Long-lived actors —
//! provisioning-policy review points, telemetry samplers — plug in as
//! [`components::Component`]s that tick on virtual time, and
//! [`SimEngine::run_stream`] feeds a whole item stream through one
//! persistent simulated machine (thousands of nodes, millions of items,
//! idle nodes cost nothing).
//!
//! ```
//! use std::sync::Arc;
//! use askel_sim::{cost::TableCost, SimEngine};
//! use askel_skeletons::{map, seq, MuscleId, MuscleRole, TimeNs};
//!
//! let program = map(
//!     |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
//!     seq(|v: Vec<i64>| v[0]),
//!     |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
//! );
//! // Every muscle takes 1s of virtual time.
//! let cost = Arc::new(TableCost::new(TimeNs::from_secs(1)));
//! let mut sim = SimEngine::new(2, cost);
//! let outcome = sim.run(&program, vec![1, 2, 3, 4]).unwrap();
//! assert_eq!(outcome.result, 10);
//! // split(1s) + 4 executes over 2 workers (2s) + merge(1s) = 4s
//! assert_eq!(outcome.wct, TimeNs::from_secs(4));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod components;
pub mod cost;
mod exec;
mod rt;
pub mod sched;
pub mod workers;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use askel_events::ListenerRegistry;
use askel_pool::PoolTelemetry;
use askel_skeletons::{Clock, Data, EvalError, ManualClock, Skel, TimeNs};

use components::Component;
use cost::CostModel;
pub use sched::OrderingPolicy;
use workers::{UniformWorkers, WorkerModel};

/// Why a simulated run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Structural error (same vocabulary as the reference interpreter).
    Eval(EvalError),
    /// A muscle (or listener) panicked; the panic was caught.
    MusclePanic(String),
    /// Work remained but no worker could ever pick it up (LP driven to 0).
    Stalled {
        /// Virtual time at which the simulation stalled.
        at: TimeNs,
        /// Ready tasks that could not start.
        ready: usize,
    },
    /// The root result failed to downcast (impossible through the typed
    /// API).
    WrongResultType,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Eval(e) => write!(f, "structural error: {e}"),
            SimError::MusclePanic(m) => write!(f, "muscle panicked: {m}"),
            SimError::Stalled { at, ready } => {
                write!(
                    f,
                    "simulation stalled at {at} with {ready} ready task(s) and LP 0"
                )
            }
            SimError::WrongResultType => write!(f, "root result had an unexpected type"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<EvalError> for SimError {
    fn from(e: EvalError) -> Self {
        SimError::Eval(e)
    }
}

/// Result of one simulated submission.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome<R> {
    /// The skeleton's result (computed by the real muscle functions).
    pub result: R,
    /// Virtual time at which the run started.
    pub started_at: TimeNs,
    /// Virtual time at which the result was delivered.
    pub finished_at: TimeNs,
    /// `finished_at - started_at`: the run's wall-clock time.
    pub wct: TimeNs,
}

/// Handle through which a listener (the autonomic controller) requests LP
/// changes while the simulation runs. Requests are applied at the current
/// virtual instant; shrinking never preempts running activities.
#[derive(Clone)]
pub struct SimLpControl {
    request: Arc<AtomicUsize>,
}

impl SimLpControl {
    const NONE: usize = usize::MAX;

    /// Requests that the LP become `lp`.
    pub fn request(&self, lp: usize) {
        self.request.store(lp, Ordering::SeqCst);
    }

    pub(crate) fn take(&self) -> Option<usize> {
        let v = self.request.swap(Self::NONE, Ordering::SeqCst);
        (v != Self::NONE).then_some(v)
    }
}

/// The discrete-event skeleton simulator.
///
/// Reusable: consecutive [`run`](SimEngine::run) calls share the clock
/// (time keeps advancing), the telemetry and the registry, so listeners
/// accumulate history across runs exactly as they would on a long-lived
/// engine.
pub struct SimEngine {
    registry: Arc<ListenerRegistry>,
    clock: Arc<ManualClock>,
    telemetry: Arc<PoolTelemetry>,
    cost: Arc<dyn CostModel>,
    workers: Option<Box<dyn WorkerModel>>,
    lp_control: SimLpControl,
    ordering: OrderingPolicy,
}

impl SimEngine {
    /// A simulator with `lp` identical local workers and the given cost
    /// model.
    pub fn new(lp: usize, cost: Arc<dyn CostModel>) -> Self {
        Self::with_workers(Box::new(UniformWorkers::new(lp)), cost)
    }

    /// A simulator over an explicit worker model (heterogeneous clusters,
    /// per-slot communication overheads — see `askel-dist`).
    pub fn with_workers(workers: Box<dyn WorkerModel>, cost: Arc<dyn CostModel>) -> Self {
        SimEngine {
            registry: ListenerRegistry::new(),
            clock: ManualClock::new(),
            telemetry: Arc::new(PoolTelemetry::new()),
            cost,
            workers: Some(workers),
            lp_control: SimLpControl {
                request: Arc::new(AtomicUsize::new(SimLpControl::NONE)),
            },
            ordering: OrderingPolicy::from_env(),
        }
    }

    /// Sets the same-timestamp [`OrderingPolicy`] (builder style). The
    /// default comes from [`OrderingPolicy::from_env`]: `Deterministic`
    /// unless the `ASKEL_SIM_SEED` env var names a fuzz seed.
    pub fn ordering(mut self, policy: OrderingPolicy) -> Self {
        self.ordering = policy;
        self
    }

    /// The active same-timestamp ordering policy.
    pub fn ordering_policy(&self) -> OrderingPolicy {
        self.ordering
    }

    /// The listener registry (identical type to the threaded engine's).
    pub fn registry(&self) -> &Arc<ListenerRegistry> {
        &self.registry
    }

    /// The virtual clock.
    pub fn clock(&self) -> &Arc<ManualClock> {
        &self.clock
    }

    /// Telemetry: active-activity timeline, peak LP, etc.
    pub fn telemetry(&self) -> &Arc<PoolTelemetry> {
        &self.telemetry
    }

    /// The LP-request handle to hand to an autonomic controller.
    pub fn lp_control(&self) -> SimLpControl {
        self.lp_control.clone()
    }

    /// Renders everything simulated so far as a Chrome trace timeline
    /// (virtual time): `active` and `target_workers` counter tracks from
    /// the telemetry stream, ready for `chrome://tracing` / Perfetto.
    /// Decision-driven runs can overlay their rewrite markers with
    /// `askel_adapt::decision_log_to_chrome` on the returned trace
    /// before saving.
    pub fn chrome_trace(&self) -> askel_obs::ChromeTrace {
        let mut trace = askel_obs::ChromeTrace::new();
        askel_pool::telemetry_to_chrome(&self.telemetry.samples(), &mut trace);
        trace
    }

    /// Current LP (between runs; during a run the pending request applies).
    pub fn lp(&self) -> usize {
        self.workers.as_ref().map(|w| w.capacity()).unwrap_or(0)
    }

    /// Sets the LP used by the next run (clamped by the worker model).
    pub fn set_lp(&mut self, lp: usize) {
        if let Some(w) = self.workers.as_mut() {
            w.set_capacity(lp);
        }
    }

    /// Runs one submission to completion in virtual time.
    pub fn run<P, R>(&mut self, skel: &Skel<P, R>, input: P) -> Result<SimOutcome<R>, SimError>
    where
        P: Send + 'static,
        R: Send + 'static,
    {
        let started_at = self.clock.now();
        let workers = self
            .workers
            .take()
            .expect("worker model is always restored");
        self.telemetry.record_target(started_at, workers.capacity());
        let outcome = rt::run(
            Arc::clone(&self.registry),
            Arc::clone(&self.clock),
            Arc::clone(&self.telemetry),
            Arc::clone(&self.cost),
            workers,
            self.lp_control.clone(),
            self.ordering,
            skel.node(),
            Box::new(input),
        );
        let result = match outcome {
            Ok((result, workers)) => {
                self.workers = Some(workers);
                result
            }
            Err((err, workers)) => {
                self.workers = Some(workers);
                return Err(err);
            }
        };
        let finished_at = self.clock.now();
        let result = *result
            .downcast::<R>()
            .map_err(|_| SimError::WrongResultType)?;
        Ok(SimOutcome {
            result,
            started_at,
            finished_at,
            wct: finished_at.saturating_sub(started_at),
        })
    }

    /// Streams items through one **persistent** simulated machine.
    ///
    /// Unlike repeated [`run`](SimEngine::run) calls — which build a
    /// fresh runtime per item — the machine survives across items:
    /// worker occupancy, in-flight chains, and per-muscle invocation
    /// counters (cost-model `seq_no`s) all carry over, matching a
    /// long-lived threaded engine fed a stream. Up to `window` items are
    /// in flight at once; `window == 1` is strict lock-step
    /// (`source(i)` → run → `on_result(i)` → `source(i + 1)`), the
    /// natural place for safe-point adaptation between items.
    ///
    /// `source` is polled with the next item index and may return a
    /// different skeleton each time (reconfiguration between items);
    /// `None` ends the stream. `on_result` observes every item in
    /// completion order. `components` tick on virtual time while work is
    /// in flight (see [`components::Component`]).
    ///
    /// A failure poisons the whole machine: every item in flight reports
    /// the same error and the queues reset (at `window == 1` that is
    /// plain per-item error reporting).
    pub fn run_stream<P, R>(
        &mut self,
        window: usize,
        mut source: impl FnMut(usize) -> Option<(Skel<P, R>, P)>,
        mut on_result: impl FnMut(usize, Result<R, SimError>),
        components: &mut [Box<dyn Component>],
    ) -> StreamReport
    where
        P: Send + 'static,
        R: Send + 'static,
    {
        let started_at = self.clock.now();
        let workers = self
            .workers
            .take()
            .expect("worker model is always restored");
        self.telemetry.record_target(started_at, workers.capacity());
        let mut items = 0usize;
        let mut raw_source = |index: usize| {
            source(index).map(|(skel, input)| (Arc::clone(skel.node()), Box::new(input) as Data))
        };
        let mut raw_sink = |index: usize, outcome: Result<Data, SimError>| {
            items += 1;
            let typed = outcome.and_then(|data| {
                data.downcast::<R>()
                    .map(|b| *b)
                    .map_err(|_| SimError::WrongResultType)
            });
            on_result(index, typed);
        };
        let (stats, workers) = rt::run_stream(
            Arc::clone(&self.registry),
            Arc::clone(&self.clock),
            Arc::clone(&self.telemetry),
            Arc::clone(&self.cost),
            workers,
            self.lp_control.clone(),
            self.ordering,
            window,
            &mut raw_source,
            &mut raw_sink,
            components,
        );
        self.workers = Some(workers);
        StreamReport {
            items,
            events: stats.events,
            started_at,
            finished_at: stats.finished_at,
        }
    }
}

/// Scheduler totals for one [`SimEngine::run_stream`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamReport {
    /// Items delivered to `on_result` (successes and failures).
    pub items: usize,
    /// Scheduler events processed: work-step executions plus component
    /// ticks — the unit the throughput bench records per second.
    pub events: u64,
    /// Virtual time when the stream started.
    pub started_at: TimeNs,
    /// Virtual time when the stream drained.
    pub finished_at: TimeNs,
}
