//! The discrete-event runtime: virtual clock, worker tokens, ready stack
//! and completion queue.

use std::any::Any;
use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use askel_events::{Event, EventInfo, ListenerRegistry, Payload, Trace, When, Where};
use askel_pool::PoolTelemetry;
use askel_skeletons::{Clock, Data, InstanceId, ManualClock, MuscleId, Node, TimeNs};

use crate::cost::{CostModel, MuscleCall};
use crate::exec;
use crate::workers::WorkerModel;
use crate::{SimError, SimLpControl};

/// A unit of simulated work. Returning [`Step::Busy`] keeps the worker
/// occupied until `now + dur`, when `then` runs; [`Step::Done`] releases
/// the worker.
pub(crate) type SimWork = Box<dyn FnOnce(&mut SimRt) -> Step>;

/// Continuation receiving a node's result at the virtual instant it is
/// produced.
pub(crate) type SimCont = Box<dyn FnOnce(&mut SimRt, Data)>;

/// Outcome of one work step.
pub(crate) enum Step {
    /// Worker stays busy for `dur`; `then` runs at completion time.
    Busy {
        /// Virtual duration of the muscle just metered.
        dur: TimeNs,
        /// Continuation at completion time.
        then: SimWork,
    },
    /// Chain finished; the worker token is released.
    Done,
}

/// A ready task plus the placement annotation of the node that produced
/// it (`None` = run anywhere).
pub(crate) struct ReadyTask {
    placement: Option<Arc<str>>,
    work: SimWork,
}

struct Completion {
    at: TimeNs,
    seq: u64,
    work: SimWork,
    slot: usize,
}

impl PartialEq for Completion {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Completion {}
impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // completion (ties broken by insertion order) on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The simulator's mutable state, threaded through every work step.
pub(crate) struct SimRt {
    pub(crate) now: TimeNs,
    clock: Arc<ManualClock>,
    registry: Arc<ListenerRegistry>,
    cost: Arc<dyn CostModel>,
    telemetry: Arc<PoolTelemetry>,
    lp_control: SimLpControl,
    ready: Vec<ReadyTask>,
    completions: BinaryHeap<Completion>,
    comp_seq: u64,
    workers: Box<dyn WorkerModel>,
    occupied: std::collections::BTreeSet<usize>,
    muscle_counts: HashMap<MuscleId, u64>,
    pub(crate) error: Option<SimError>,
    pub(crate) result: Option<Data>,
}

impl SimRt {
    /// Queues simulated work on the LIFO ready stack, tagged with the
    /// placement annotation of the node that produced it.
    pub(crate) fn push_ready(&mut self, placement: Option<Arc<str>>, work: SimWork) {
        self.ready.push(ReadyTask { placement, work });
    }

    /// Emits an event at the current virtual instant.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn emit(
        &self,
        node: &Node,
        trace: &Trace,
        index: InstanceId,
        when: When,
        wher: Where,
        info: EventInfo,
        payload: &mut Payload<'_>,
    ) {
        if self.registry.is_empty() {
            return;
        }
        let event = Event {
            node: node.id,
            kind: node.tag(),
            when,
            wher,
            index,
            trace: trace.clone(),
            timestamp: self.now,
            info,
        };
        self.registry.emit(payload, &event);
    }

    /// Asks the cost model for this invocation's duration and advances the
    /// muscle's invocation counter.
    pub(crate) fn cost_of(&mut self, muscle: MuscleId, items: usize, payload: &dyn Any) -> TimeNs {
        let seq_no = {
            let c = self.muscle_counts.entry(muscle).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        self.cost.duration(&MuscleCall {
            muscle,
            role: muscle.role,
            seq_no,
            items,
            payload,
        })
    }

    /// Runs a muscle, converting a panic into a simulation failure.
    /// Returns `None` when the run is now poisoned.
    pub(crate) fn guard<T>(&mut self, f: impl FnOnce() -> T) -> Option<T> {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => Some(v),
            Err(p) => {
                self.fail(SimError::MusclePanic(panic_message(p.as_ref())));
                None
            }
        }
    }

    /// Poisons the run (first failure wins).
    pub(crate) fn fail(&mut self, err: SimError) {
        if self.error.is_none() {
            self.error = Some(err);
        }
    }

    fn apply_lp_request(&mut self) {
        if let Some(lp) = self.lp_control.take() {
            if lp != self.workers.capacity() {
                self.workers.set_capacity(lp);
                self.telemetry
                    .record_target(self.now, self.workers.capacity());
            }
        }
    }

    /// Picks the next `(ready index, worker slot)` pair to start, or
    /// `None` if nothing can start right now.
    ///
    /// LIFO discipline is preserved: the newest ready task is considered
    /// first, and an unannotated task always takes the lowest free slot —
    /// exactly the pre-placement behaviour. A task whose placement names
    /// a currently-enabled node is **hard-constrained** to that node's
    /// slots (it waits, letting older ready tasks start, when the node is
    /// fully busy); a placement naming no enabled slot falls back to
    /// running anywhere, so placement can never stall the run.
    fn pick_ready(&self) -> Option<(usize, usize)> {
        let capacity = self.workers.capacity();
        // The common case — the newest ready task is unannotated — only
        // needs the lowest free slot, computed lazily (no allocation on
        // the dispatch hot path).
        let lowest_free = (0..capacity).find(|slot| !self.occupied.contains(slot))?;
        for i in (0..self.ready.len()).rev() {
            match &self.ready[i].placement {
                Some(p) if self.workers.placement_enabled(p) => {
                    if let Some(slot) = (lowest_free..capacity)
                        .find(|&s| !self.occupied.contains(&s) && self.workers.slot_matches(s, p))
                    {
                        return Some((i, slot));
                    }
                    // The node exists but is fully busy: this task waits
                    // for it; an older task may still start elsewhere.
                }
                _ => return Some((i, lowest_free)),
            }
        }
        None
    }

    fn execute(&mut self, work: SimWork, slot: usize, overhead: TimeNs) {
        match work(self) {
            Step::Busy { dur, then } => {
                // Asymmetric node speeds: the slot's cost factor scales
                // the muscle duration (not the communication overhead).
                let factor = self.workers.cost_factor(slot);
                let dur = if factor == 1.0 {
                    dur
                } else {
                    TimeNs(((dur.0 as f64) * factor.max(0.0)).round() as u64)
                };
                self.workers.note_busy(slot, dur + overhead);
                self.comp_seq += 1;
                self.completions.push(Completion {
                    at: self.now + dur + overhead,
                    seq: self.comp_seq,
                    work: then,
                    slot,
                });
            }
            Step::Done => {
                self.occupied.remove(&slot);
                self.telemetry.record_task_end(self.now, false);
            }
        }
    }

    fn run_loop(&mut self) {
        loop {
            if self.error.is_some() {
                return;
            }
            self.apply_lp_request();
            // Start ready work while worker slots are free (LIFO). The
            // slot's communication overhead (zero for local workers) is
            // charged on the chain's first busy segment.
            loop {
                if self.ready.is_empty() {
                    break;
                }
                let Some((index, slot)) = self.pick_ready() else {
                    break;
                };
                self.occupied.insert(slot);
                let task = self.ready.remove(index);
                let overhead = self.workers.chain_overhead(slot);
                self.telemetry.record_task_start(self.now);
                self.execute(task.work, slot, overhead);
                if self.error.is_some() {
                    return;
                }
                self.apply_lp_request();
            }
            // Advance virtual time to the next completion.
            let Some(c) = self.completions.pop() else {
                if !self.ready.is_empty() && self.occupied.is_empty() {
                    let (at, ready) = (self.now, self.ready.len());
                    self.fail(SimError::Stalled { at, ready });
                }
                return;
            };
            self.now = self.now.max(c.at);
            self.clock.advance_to(self.now);
            self.execute(c.work, c.slot, TimeNs::ZERO);
        }
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Outcome of one simulated run: the erased result (or error) plus the
/// worker model handed back to the engine either way.
pub(crate) type RunResult = Result<(Data, Box<dyn WorkerModel>), (SimError, Box<dyn WorkerModel>)>;

/// Runs one submission to completion; returns the erased result and the
/// final worker model.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    registry: Arc<ListenerRegistry>,
    clock: Arc<ManualClock>,
    telemetry: Arc<PoolTelemetry>,
    cost: Arc<dyn CostModel>,
    workers: Box<dyn WorkerModel>,
    lp_control: SimLpControl,
    node: &Arc<Node>,
    input: Data,
) -> RunResult {
    let mut rt = SimRt {
        now: clock.now(),
        clock,
        registry,
        cost,
        telemetry,
        lp_control,
        ready: Vec::new(),
        completions: BinaryHeap::new(),
        comp_seq: 0,
        workers,
        occupied: std::collections::BTreeSet::new(),
        muscle_counts: HashMap::new(),
        error: None,
        result: None,
    };
    let root_cont: SimCont = Box::new(|rt, data| {
        rt.result = Some(data);
    });
    exec::schedule_node(&mut rt, node, None, input, root_cont);
    rt.run_loop();
    if let Some(err) = rt.error {
        return Err((err, rt.workers));
    }
    match rt.result {
        Some(data) => Ok((data, rt.workers)),
        None => {
            let err = SimError::Stalled {
                at: rt.now,
                ready: rt.ready.len(),
            };
            Err((err, rt.workers))
        }
    }
}
