//! The discrete-event runtime: virtual clock, worker slots, policy-ordered
//! ready/completion queues, and component ticks.

use std::any::Any;
use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use askel_events::{Event, EventInfo, ListenerRegistry, Payload, Trace, When, Where};
use askel_pool::PoolTelemetry;
use askel_skeletons::{Clock, Data, InstanceId, ManualClock, MuscleId, Node, TimeNs};

use crate::components::{Command, Component};
use crate::cost::{CostModel, MuscleCall};
use crate::exec;
use crate::sched::{EventQueue, OrderingPolicy, ReadyQueue};
use crate::workers::WorkerModel;
use crate::{SimError, SimLpControl};

/// A unit of simulated work. Returning [`Step::Busy`] keeps the worker
/// occupied until `now + dur`, when `then` runs; [`Step::Done`] releases
/// the worker.
pub(crate) type SimWork = Box<dyn FnOnce(&mut SimRt) -> Step>;

/// Continuation receiving a node's result at the virtual instant it is
/// produced.
pub(crate) type SimCont = Box<dyn FnOnce(&mut SimRt, Data)>;

/// Outcome of one work step.
pub(crate) enum Step {
    /// Worker stays busy for `dur`; `then` runs at completion time.
    Busy {
        /// Virtual duration of the muscle just metered.
        dur: TimeNs,
        /// Continuation at completion time.
        then: SimWork,
    },
    /// Chain finished; the worker token is released.
    Done,
}

/// A ready task plus the placement annotation of the node that produced
/// it (`None` = run anywhere).
pub(crate) struct ReadyTask {
    placement: Option<Arc<str>>,
    work: SimWork,
}

/// A scheduled chain continuation: the slot it occupies and the work to
/// resume. Timing and tie-breaking live in the [`EventQueue`].
struct Completion {
    work: SimWork,
    slot: usize,
}

/// The simulator's mutable state, threaded through every work step.
pub(crate) struct SimRt {
    pub(crate) now: TimeNs,
    clock: Arc<ManualClock>,
    registry: Arc<ListenerRegistry>,
    cost: Arc<dyn CostModel>,
    telemetry: Arc<PoolTelemetry>,
    lp_control: SimLpControl,
    ready: ReadyQueue<ReadyTask>,
    completions: EventQueue<Completion>,
    workers: Box<dyn WorkerModel>,
    /// Slots currently running a chain.
    occupied: BTreeSet<usize>,
    /// Slots below capacity and not occupied — kept in lock-step with
    /// `occupied` so slot picks are O(log n) instead of O(capacity).
    free: BTreeSet<usize>,
    muscle_counts: HashMap<MuscleId, u64>,
    /// Scheduler events processed: work-step executions + component ticks.
    pub(crate) events: u64,
    /// Results of finished stream items, filled by per-item root
    /// continuations during [`run_stream`].
    stream_done: Vec<(usize, Data)>,
    pub(crate) error: Option<SimError>,
    pub(crate) result: Option<Data>,
}

impl SimRt {
    /// Queues simulated work on the policy-ordered ready pool, tagged with
    /// the placement annotation of the node that produced it.
    pub(crate) fn push_ready(&mut self, placement: Option<Arc<str>>, work: SimWork) {
        self.ready.push(ReadyTask { placement, work });
    }

    /// Emits an event at the current virtual instant.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn emit(
        &self,
        node: &Node,
        trace: &Trace,
        index: InstanceId,
        when: When,
        wher: Where,
        info: EventInfo,
        payload: &mut Payload<'_>,
    ) {
        if self.registry.is_empty() {
            return;
        }
        let event = Event {
            node: node.id,
            kind: node.tag(),
            when,
            wher,
            index,
            trace: trace.clone(),
            timestamp: self.now,
            info,
        };
        self.registry.emit(payload, &event);
    }

    /// Asks the cost model for this invocation's duration and advances the
    /// muscle's invocation counter.
    pub(crate) fn cost_of(&mut self, muscle: MuscleId, items: usize, payload: &dyn Any) -> TimeNs {
        let seq_no = {
            let c = self.muscle_counts.entry(muscle).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        self.cost.duration(&MuscleCall {
            muscle,
            role: muscle.role,
            seq_no,
            items,
            payload,
        })
    }

    /// Runs a muscle, converting a panic into a simulation failure.
    /// Returns `None` when the run is now poisoned.
    pub(crate) fn guard<T>(&mut self, f: impl FnOnce() -> T) -> Option<T> {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => Some(v),
            Err(p) => {
                self.fail(SimError::MusclePanic(panic_message(p.as_ref())));
                None
            }
        }
    }

    /// Poisons the run (first failure wins).
    pub(crate) fn fail(&mut self, err: SimError) {
        if self.error.is_none() {
            self.error = Some(err);
        }
    }

    /// Recomputes the free-slot set from capacity and occupancy. Called on
    /// construction, capacity changes, and stream error resets.
    fn rebuild_free(&mut self) {
        let capacity = self.workers.capacity();
        self.free = (0..capacity)
            .filter(|s| !self.occupied.contains(s))
            .collect();
    }

    fn apply_lp_request(&mut self) {
        if let Some(lp) = self.lp_control.take() {
            if lp != self.workers.capacity() {
                self.workers.set_capacity(lp);
                self.telemetry
                    .record_target(self.now, self.workers.capacity());
                self.rebuild_free();
            }
        }
    }

    /// Picks the next `(ready index, worker slot)` pair to start, or
    /// `None` if nothing can start right now.
    ///
    /// Candidates are visited in the ordering policy's dispatch order
    /// (LIFO under `Deterministic` — the pre-refactor discipline). An
    /// unannotated task always takes the lowest free slot. A task whose
    /// placement names a currently-enabled node is **hard-constrained** to
    /// that node's slots (it waits, letting older ready tasks start, when
    /// the node is fully busy); a placement naming no enabled slot falls
    /// back to running anywhere, so placement can never stall the run.
    fn pick_ready(&self) -> Option<(usize, usize)> {
        let capacity = self.workers.capacity();
        let lowest_free = *self.free.first()?;
        for i in self.ready.order() {
            match &self.ready.get(i).placement {
                Some(p) if self.workers.placement_enabled(p) => {
                    // Prefer the model's contiguous slot-block hint
                    // (O(log n)); fall back to probing each free slot.
                    let slot = match self.workers.slot_range(p) {
                        Some((lo, hi)) => self
                            .free
                            .range(lo.max(lowest_free)..hi.min(capacity))
                            .next()
                            .copied(),
                        None => self
                            .free
                            .range(lowest_free..capacity)
                            .find(|&&s| self.workers.slot_matches(s, p))
                            .copied(),
                    };
                    if let Some(slot) = slot {
                        return Some((i, slot));
                    }
                    // The node exists but is fully busy: this task waits
                    // for it; another candidate may still start elsewhere.
                }
                _ => return Some((i, lowest_free)),
            }
        }
        None
    }

    fn execute(&mut self, work: SimWork, slot: usize, overhead: TimeNs) {
        self.events += 1;
        match work(self) {
            Step::Busy { dur, then } => {
                // Asymmetric node speeds: the slot's cost factor scales
                // the muscle duration (not the communication overhead).
                let factor = self.workers.cost_factor(slot);
                let dur = if factor == 1.0 {
                    dur
                } else {
                    TimeNs(((dur.0 as f64) * factor.max(0.0)).round() as u64)
                };
                self.workers.note_busy(slot, dur + overhead);
                self.completions
                    .push(self.now + dur + overhead, Completion { work: then, slot });
            }
            Step::Done => {
                self.occupied.remove(&slot);
                if slot < self.workers.capacity() {
                    self.free.insert(slot);
                }
                self.telemetry.record_task_end(self.now, false);
            }
        }
    }

    /// One scheduling round: apply pending LP requests, start every ready
    /// task a free slot will take, then advance virtual time to the next
    /// component tick or completion (ties tick components first, so a
    /// component observes the world as of strictly-earlier events).
    ///
    /// Returns `false` when the machine can make no further progress —
    /// drained, stalled, or poisoned.
    fn step(&mut self, components: &mut [Box<dyn Component>]) -> bool {
        if self.error.is_some() {
            return false;
        }
        self.apply_lp_request();
        // Start ready work while worker slots are free. The slot's
        // communication overhead (zero for local workers) is charged on
        // the chain's first busy segment.
        loop {
            if self.ready.is_empty() {
                break;
            }
            let Some((index, slot)) = self.pick_ready() else {
                break;
            };
            self.occupied.insert(slot);
            self.free.remove(&slot);
            let task = self.ready.remove(index);
            let overhead = self.workers.chain_overhead(slot);
            self.telemetry.record_task_start(self.now);
            self.execute(task.work, slot, overhead);
            if self.error.is_some() {
                return false;
            }
            self.apply_lp_request();
        }
        // Advance virtual time. Components only tick while completions
        // are pending: an idle machine costs nothing and the simulation
        // terminates regardless of what components would like next.
        let Some(completion_at) = self.completions.peek_at() else {
            if !self.ready.is_empty() && self.occupied.is_empty() {
                let (at, ready) = (self.now, self.ready.len());
                self.fail(SimError::Stalled { at, ready });
            }
            return false;
        };
        if !components.is_empty() {
            let due: Vec<(usize, TimeNs)> = components
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.next_tick(self.now).map(|t| (i, t)))
                .collect();
            if let Some(tick_at) = due
                .iter()
                .map(|&(_, t)| t)
                .min()
                .filter(|&t| t <= completion_at)
            {
                self.now = self.now.max(tick_at);
                self.clock.advance_to(self.now);
                for (i, t) in due {
                    if t <= self.now {
                        self.events += 1;
                        for cmd in components[i].tick(self.now) {
                            match cmd {
                                Command::RequestLp(lp) => self.lp_control.request(lp),
                            }
                        }
                    }
                }
                return true;
            }
        }
        let Some((at, c)) = self.completions.pop() else {
            return false;
        };
        self.now = self.now.max(at);
        self.clock.advance_to(self.now);
        self.execute(c.work, c.slot, TimeNs::ZERO);
        true
    }

    fn run_loop(&mut self, components: &mut [Box<dyn Component>]) {
        while self.step(components) {}
    }

    /// Drops every queued task and in-flight completion (stream error
    /// recovery: the whole simulated machine is poisoned and reset).
    fn reset_machine(&mut self) {
        self.ready.clear();
        self.completions.clear();
        self.stream_done.clear();
        self.occupied.clear();
        self.rebuild_free();
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Outcome of one simulated run: the erased result (or error) plus the
/// worker model handed back to the engine either way.
pub(crate) type RunResult = Result<(Data, Box<dyn WorkerModel>), (SimError, Box<dyn WorkerModel>)>;

fn new_rt(
    registry: Arc<ListenerRegistry>,
    clock: Arc<ManualClock>,
    telemetry: Arc<PoolTelemetry>,
    cost: Arc<dyn CostModel>,
    workers: Box<dyn WorkerModel>,
    lp_control: SimLpControl,
    policy: OrderingPolicy,
) -> SimRt {
    let mut rt = SimRt {
        now: clock.now(),
        clock,
        registry,
        cost,
        telemetry,
        lp_control,
        ready: ReadyQueue::new(policy),
        completions: EventQueue::new(policy),
        workers,
        occupied: BTreeSet::new(),
        free: BTreeSet::new(),
        muscle_counts: HashMap::new(),
        events: 0,
        stream_done: Vec::new(),
        error: None,
        result: None,
    };
    rt.rebuild_free();
    rt
}

/// Runs one submission to completion; returns the erased result and the
/// final worker model.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    registry: Arc<ListenerRegistry>,
    clock: Arc<ManualClock>,
    telemetry: Arc<PoolTelemetry>,
    cost: Arc<dyn CostModel>,
    workers: Box<dyn WorkerModel>,
    lp_control: SimLpControl,
    policy: OrderingPolicy,
    node: &Arc<Node>,
    input: Data,
) -> RunResult {
    let mut rt = new_rt(
        registry, clock, telemetry, cost, workers, lp_control, policy,
    );
    let root_cont: SimCont = Box::new(|rt, data| {
        rt.result = Some(data);
    });
    exec::schedule_node(&mut rt, node, None, input, root_cont);
    rt.run_loop(&mut []);
    if let Some(err) = rt.error {
        return Err((err, rt.workers));
    }
    match rt.result {
        Some(data) => Ok((data, rt.workers)),
        None => {
            let err = SimError::Stalled {
                at: rt.now,
                ready: rt.ready.len(),
            };
            Err((err, rt.workers))
        }
    }
}

/// Scheduler totals for one streamed run (erased layer).
pub(crate) struct StreamStats {
    /// Scheduler events processed (work steps + component ticks).
    pub(crate) events: u64,
    /// Virtual time when the stream drained.
    pub(crate) finished_at: TimeNs,
}

/// Streams items through one persistent simulated machine.
///
/// Unlike [`run`], the runtime survives across items: worker occupancy,
/// virtual time, *and per-muscle invocation counters* carry over —
/// matching a long-lived threaded engine fed a stream, which is exactly
/// the regime the adapt stack tunes. Up to `window` items are in flight
/// at once (`window == 1` is strict lock-step: `source(i)` → run →
/// `sink(i)` → `source(i + 1)`). `source` is polled with the next item
/// index and ends the stream by returning `None`; `sink` observes every
/// item's outcome in completion order.
///
/// Error semantics: a failure poisons the *whole machine* — every item
/// then in flight is reported failed with the same error and the queues
/// are reset — because in-flight items share worker slots and one
/// poisoned chain cannot be unwound from under its neighbours. With
/// `window == 1` this degrades to the obvious per-item error reporting.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_stream(
    registry: Arc<ListenerRegistry>,
    clock: Arc<ManualClock>,
    telemetry: Arc<PoolTelemetry>,
    cost: Arc<dyn CostModel>,
    workers: Box<dyn WorkerModel>,
    lp_control: SimLpControl,
    policy: OrderingPolicy,
    window: usize,
    source: &mut dyn FnMut(usize) -> Option<(Arc<Node>, Data)>,
    sink: &mut dyn FnMut(usize, Result<Data, SimError>),
    components: &mut [Box<dyn Component>],
) -> (StreamStats, Box<dyn WorkerModel>) {
    let window = window.max(1);
    let mut rt = new_rt(
        registry, clock, telemetry, cost, workers, lp_control, policy,
    );
    let mut next_index = 0usize;
    let mut in_flight: Vec<usize> = Vec::new();
    let mut source_done = false;
    loop {
        while !source_done && in_flight.len() < window {
            match source(next_index) {
                Some((node, input)) => {
                    let index = next_index;
                    next_index += 1;
                    in_flight.push(index);
                    let root: SimCont = Box::new(move |rt, data| {
                        rt.stream_done.push((index, data));
                    });
                    exec::schedule_node(&mut rt, &node, None, input, root);
                }
                None => source_done = true,
            }
        }
        if in_flight.is_empty() {
            // The submit loop only exits with nothing in flight once the
            // source is exhausted.
            break;
        }
        // Drive the machine until an item finishes, the run poisons, or
        // nothing can make progress.
        loop {
            let progressed = rt.step(components);
            if !rt.stream_done.is_empty() || rt.error.is_some() || !progressed {
                break;
            }
        }
        if let Some(err) = rt.error.take() {
            for index in in_flight.drain(..) {
                sink(index, Err(err.clone()));
            }
            rt.reset_machine();
            continue;
        }
        if rt.stream_done.is_empty() {
            // Machine drained with items still in flight: stalled.
            let err = SimError::Stalled {
                at: rt.now,
                ready: rt.ready.len(),
            };
            for index in in_flight.drain(..) {
                sink(index, Err(err.clone()));
            }
            rt.reset_machine();
            continue;
        }
        for (index, data) in std::mem::take(&mut rt.stream_done) {
            in_flight.retain(|&i| i != index);
            sink(index, Ok(data));
        }
    }
    let stats = StreamStats {
        events: rt.events,
        finished_at: rt.now,
    };
    (stats, rt.workers)
}
