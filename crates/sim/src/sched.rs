//! The discrete-event scheduler core: a priority event queue plus
//! pluggable same-timestamp ordering policies.
//!
//! Everything the simulator does — muscle completions, ready-task
//! dispatch, component ticks — flows through two structures defined here:
//!
//! * `EventQueue` (crate-private): a binary min-heap of
//!   `(at, tie_key, seq)`-ordered future events. The earliest timestamp
//!   always pops first; *ties* at one timestamp are broken by the
//!   [`OrderingPolicy`].
//! * `ReadyQueue` (crate-private): the pool of tasks eligible to start
//!   right now. The policy decides which candidate is offered to a free
//!   worker slot first.
//!
//! [`OrderingPolicy::Deterministic`] reproduces the historical simulator
//! byte-for-byte: completions in insertion order, ready tasks LIFO
//! (newest first) — the paper's observed Skandium schedule.
//! [`OrderingPolicy::SeededRandom`] permutes only what is genuinely
//! unordered — events carrying the *same* virtual timestamp — which
//! turns the simulator into a concurrency fuzzer for the adapt/offload
//! decision stack: any decision logic that accidentally depends on
//! tie-breaking order diverges across seeds, while a fixed seed replays
//! bit-identically (timestamps included).

use std::collections::BinaryHeap;

use askel_skeletons::TimeNs;

/// The SplitMix64 finalizer: a fast, dependency-free bijective hash with
/// good avalanche behaviour. Shared by [`crate::cost::JitterCost`] (cost
/// jitter) and [`OrderingPolicy::SeededRandom`] (tie keys), so the whole
/// simulator's pseudo-randomness comes from one well-understood
/// primitive.
pub fn splitmix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Environment variable read by [`OrderingPolicy::from_env`]: set it to a
/// `u64` to run every simulator constructed afterwards under
/// [`OrderingPolicy::SeededRandom`] with that seed — the command-line
/// reproduction path for a failing fuzz seed.
pub const SEED_ENV: &str = "ASKEL_SIM_SEED";

/// How same-timestamp scheduler events are ordered.
///
/// Virtual time gives most events a total order for free; only events at
/// the *same* instant are genuinely concurrent. This policy decides those
/// ties — which makes it exactly a model of scheduling nondeterminism,
/// with none of the flakiness: both variants are fully deterministic
/// functions of their inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderingPolicy {
    /// Stable order: completions pop in insertion order, ready tasks
    /// dispatch LIFO (newest first). Byte-identical to the simulator's
    /// historical behaviour — decision-log regression tests pin this.
    Deterministic,
    /// Ties are broken by a SplitMix64 hash of `(seed, event seq)`:
    /// different seeds explore different interleavings, the same seed
    /// replays the same schedule bit-for-bit (virtual timestamps
    /// included). The fuzzer mode.
    SeededRandom(u64),
}

impl OrderingPolicy {
    /// Reads [`SEED_ENV`]: a parseable `u64` yields
    /// `SeededRandom(seed)`, anything else `Deterministic`.
    pub fn from_env() -> Self {
        match std::env::var(SEED_ENV).ok().and_then(|s| s.parse().ok()) {
            Some(seed) => OrderingPolicy::SeededRandom(seed),
            None => OrderingPolicy::Deterministic,
        }
    }

    /// The fuzz seed, when running seeded.
    pub fn seed(&self) -> Option<u64> {
        match self {
            OrderingPolicy::Deterministic => None,
            OrderingPolicy::SeededRandom(seed) => Some(*seed),
        }
    }

    /// The tie-break key for the `seq`-th event: equal-timestamp events
    /// pop in ascending key order. Deterministic keys *are* the sequence
    /// numbers (insertion order); seeded keys hash them.
    fn tie_key(&self, seq: u64) -> u64 {
        match self {
            OrderingPolicy::Deterministic => seq,
            OrderingPolicy::SeededRandom(seed) => splitmix64(seed ^ seq),
        }
    }
}

struct Scheduled<T> {
    at: TimeNs,
    key: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event
        // (ties by policy key, then insertion order) on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The future-event queue: a binary min-heap over `(at, tie_key, seq)`.
pub(crate) struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
    policy: OrderingPolicy,
}

impl<T> EventQueue<T> {
    pub(crate) fn new(policy: OrderingPolicy) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            policy,
        }
    }

    /// Schedules `item` at virtual time `at`.
    pub(crate) fn push(&mut self, at: TimeNs, item: T) {
        self.seq += 1;
        self.heap.push(Scheduled {
            at,
            key: self.policy.tie_key(self.seq),
            seq: self.seq,
            item,
        });
    }

    /// Pops the earliest event.
    pub(crate) fn pop(&mut self) -> Option<(TimeNs, T)> {
        self.heap.pop().map(|s| (s.at, s.item))
    }

    /// The next event's timestamp, without popping.
    pub(crate) fn peek_at(&self) -> Option<TimeNs> {
        self.heap.peek().map(|s| s.at)
    }

    pub(crate) fn clear(&mut self) {
        self.heap.clear();
    }
}

struct ReadyEntry<T> {
    key: u64,
    item: T,
}

/// The pool of tasks eligible to start now, in policy-preference order.
pub(crate) struct ReadyQueue<T> {
    entries: Vec<ReadyEntry<T>>,
    seq: u64,
    policy: OrderingPolicy,
}

impl<T> ReadyQueue<T> {
    pub(crate) fn new(policy: OrderingPolicy) -> Self {
        ReadyQueue {
            entries: Vec::new(),
            seq: 0,
            policy,
        }
    }

    pub(crate) fn push(&mut self, item: T) {
        self.seq += 1;
        self.entries.push(ReadyEntry {
            key: self.policy.tie_key(self.seq),
            item,
        });
    }

    pub(crate) fn get(&self, index: usize) -> &T {
        &self.entries[index].item
    }

    /// Removes and returns the entry at `index` (an index previously
    /// yielded by [`order`](ReadyQueue::order)). In the deterministic
    /// LIFO common case the index is the last entry, so removal is O(1);
    /// otherwise the tail shifts, preserving insertion order.
    pub(crate) fn remove(&mut self, index: usize) -> T {
        self.entries.remove(index).item
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub(crate) fn clear(&mut self) {
        self.entries.clear();
    }

    /// Candidate indices in dispatch-preference order: newest first under
    /// `Deterministic` (the LIFO discipline the paper observed in
    /// Skandium), highest tie key first under `SeededRandom`.
    pub(crate) fn order(&self) -> CandidateOrder {
        match self.policy {
            OrderingPolicy::Deterministic => CandidateOrder::Lifo((0..self.entries.len()).rev()),
            OrderingPolicy::SeededRandom(_) => {
                let mut idx: Vec<usize> = (0..self.entries.len()).collect();
                // Stable under equal keys: later entries win, mirroring
                // the LIFO bias; keys are per-push unique in practice.
                idx.sort_by(|&a, &b| {
                    self.entries[b]
                        .key
                        .cmp(&self.entries[a].key)
                        .then_with(|| b.cmp(&a))
                });
                CandidateOrder::Keyed(idx.into_iter())
            }
        }
    }
}

/// Iterator over ready-queue candidate indices (see [`ReadyQueue::order`]).
pub(crate) enum CandidateOrder {
    Lifo(std::iter::Rev<std::ops::Range<usize>>),
    Keyed(std::vec::IntoIter<usize>),
}

impl Iterator for CandidateOrder {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            CandidateOrder::Lifo(it) => it.next(),
            CandidateOrder::Keyed(it) => it.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_queue_pops_in_insertion_order_at_ties() {
        let mut q = EventQueue::new(OrderingPolicy::Deterministic);
        let t = TimeNs::from_secs(1);
        q.push(t, "a");
        q.push(t, "b");
        q.push(TimeNs::ZERO, "early");
        assert_eq!(q.pop(), Some((TimeNs::ZERO, "early")));
        assert_eq!(q.pop(), Some((t, "a")));
        assert_eq!(q.pop(), Some((t, "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn seeded_queue_replays_identically_per_seed() {
        let order = |seed: u64| {
            let mut q = EventQueue::new(OrderingPolicy::SeededRandom(seed));
            let t = TimeNs::from_secs(1);
            for label in 0..16 {
                q.push(t, label);
            }
            let mut got = Vec::new();
            while let Some((_, l)) = q.pop() {
                got.push(l);
            }
            got
        };
        assert_eq!(order(7), order(7), "same seed, same tie order");
        assert_ne!(
            order(7),
            (0..16).collect::<Vec<_>>(),
            "a seeded queue should actually permute ties"
        );
        // Timestamp order always dominates the tie key.
        let mut q = EventQueue::new(OrderingPolicy::SeededRandom(7));
        q.push(TimeNs::from_secs(2), "late");
        q.push(TimeNs::from_secs(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
    }

    #[test]
    fn ready_order_is_lifo_deterministically_and_seeded_is_stable() {
        let mut r = ReadyQueue::new(OrderingPolicy::Deterministic);
        for v in 0..4 {
            r.push(v);
        }
        assert_eq!(r.order().collect::<Vec<_>>(), vec![3, 2, 1, 0]);

        let mut s = ReadyQueue::new(OrderingPolicy::SeededRandom(42));
        for v in 0..8 {
            s.push(v);
        }
        let a: Vec<usize> = s.order().collect();
        let b: Vec<usize> = s.order().collect();
        assert_eq!(a, b, "candidate order is a pure function of the seed");
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn from_env_parses_the_seed() {
        // Only exercises the parse logic, not the process environment.
        assert_eq!(OrderingPolicy::Deterministic.seed(), None);
        assert_eq!(OrderingPolicy::SeededRandom(9).seed(), Some(9));
    }

    #[test]
    fn splitmix_is_bijective_enough() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..1000u64 {
            assert!(seen.insert(splitmix64(x)), "collision at {x}");
        }
    }
}
