//! Worker models: what the simulator's worker slots *are*.
//!
//! The default [`UniformWorkers`] reproduces plain multicore threads
//! (identical slots, no communication cost). The `askel-dist` crate builds
//! heterogeneous clusters on this trait — the paper's §4/§6 future work of
//! running the same autonomic loop over "a distributed set of workers,
//! adding or removing workers like adding or removing threads in a
//! centralised manner".
//!
//! Slots are identified by index; the scheduler always picks the *lowest*
//! free slot below the current capacity, so a model can assign meaning to
//! slot ranges (e.g. "slots 0–3 are the local node, 4–11 the remote one")
//! and capacity growth brings slots online in a deterministic order.

use askel_skeletons::TimeNs;

/// The simulator's supply of workers.
pub trait WorkerModel: Send {
    /// Slots currently usable: indices `0..capacity()`.
    fn capacity(&self) -> usize;

    /// Requests a new capacity (the controller's LP). Models may clamp
    /// (e.g. a cluster cannot exceed its provisioned slots).
    fn set_capacity(&mut self, n: usize);

    /// Communication overhead charged once per task chain executed on
    /// `slot` (dispatch + result return, folded together). Zero for local
    /// workers.
    fn chain_overhead(&self, slot: usize) -> TimeNs {
        let _ = slot;
        TimeNs::ZERO
    }

    /// Multiplier applied to every modeled muscle duration executed on
    /// `slot`: 1.0 for a baseline worker, 2.0 for one running at half
    /// speed. Asymmetric node speeds (heterogeneous clusters) plug in
    /// here; the default is a uniform machine.
    fn cost_factor(&self, slot: usize) -> f64 {
        let _ = slot;
        1.0
    }

    /// Observation hook: `busy` virtual time (scaled duration plus any
    /// chain overhead) was just scheduled on `slot`. Models that surface
    /// per-node utilization accumulate it here; the default discards it.
    fn note_busy(&mut self, slot: usize, busy: TimeNs) {
        let _ = (slot, busy);
    }

    /// Does `slot` satisfy the placement annotation `placement` (a worker
    /// node name, see `askel_skeletons::Node::placement`)? The default —
    /// uniform local workers — accepts every placement: all slots are the
    /// same machine.
    fn slot_matches(&self, slot: usize, placement: &str) -> bool {
        let _ = (slot, placement);
        true
    }

    /// Is any slot below the current capacity able to satisfy
    /// `placement`? While this holds, placement is a **hard** constraint
    /// (tasks wait for a matching slot); once it stops holding — the node
    /// was retired, or was never provisioned — annotated tasks fall back
    /// to running anywhere, so a placement can never stall the
    /// simulation. The default mirrors [`slot_matches`]: uniform workers
    /// satisfy any placement as long as capacity is non-zero.
    ///
    /// [`slot_matches`]: WorkerModel::slot_matches
    fn placement_enabled(&self, placement: &str) -> bool {
        let _ = placement;
        self.capacity() > 0
    }

    /// The contiguous slot block `[lo, hi)` satisfying `placement`, when
    /// the model lays slots out that way. Must agree exactly with
    /// [`slot_matches`]: `slot_matches(s, placement) ⇔ lo ≤ s < hi`.
    /// Returning a range lets the scheduler pick a matching free slot in
    /// O(log n) instead of probing every free slot; `None` (the default)
    /// falls back to per-slot probing.
    ///
    /// [`slot_matches`]: WorkerModel::slot_matches
    fn slot_range(&self, placement: &str) -> Option<(usize, usize)> {
        let _ = placement;
        None
    }
}

/// Identical local workers — plain threads on one machine.
#[derive(Debug, Clone)]
pub struct UniformWorkers {
    capacity: usize,
}

impl UniformWorkers {
    /// `n` interchangeable zero-overhead workers.
    pub fn new(n: usize) -> Self {
        UniformWorkers { capacity: n }
    }
}

impl WorkerModel for UniformWorkers {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn set_capacity(&mut self, n: usize) {
        self.capacity = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_workers_resize_freely() {
        let mut w = UniformWorkers::new(2);
        assert_eq!(w.capacity(), 2);
        w.set_capacity(10);
        assert_eq!(w.capacity(), 10);
        assert_eq!(w.chain_overhead(3), TimeNs::ZERO);
    }
}
