//! Virtual-time semantics of the simulator: makespans, LIFO order,
//! mid-run LP changes, determinism, and failure handling.

use std::sync::Arc;

use askel_events::util::EventCollector;
use askel_events::{EventFilter, FnListener, When, Where};
use askel_sim::cost::{TableCost, ZeroCost};
use askel_sim::{SimEngine, SimError, SimOutcome};
use askel_skeletons::{
    dac, fork, map, pipe, seq, sfor, sif, swhile, MuscleId, MuscleRole, Skel, TimeNs,
};

fn secs(s: u64) -> TimeNs {
    TimeNs::from_secs(s)
}

/// map(fs, seq(fe), fm) over n items with per-muscle costs.
fn flat_map(n: i64) -> Skel<Vec<i64>, i64> {
    let _ = n;
    map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0]),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    )
}

#[test]
fn sequential_wct_is_total_work() {
    // LP 1: split + 6×fe + merge, all serialized.
    let program = flat_map(6);
    let ids = program.node().collect_muscles();
    let mut cost = TableCost::new(secs(0));
    for m in &ids {
        let d = match m.id.role {
            MuscleRole::Split => secs(10),
            MuscleRole::Execute => secs(15),
            MuscleRole::Merge => secs(5),
            MuscleRole::Condition => secs(0),
        };
        cost.set(m.id, d);
    }
    let mut sim = SimEngine::new(1, Arc::new(cost));
    let out = sim.run(&program, (1..=6).collect()).unwrap();
    assert_eq!(out.result, 21);
    assert_eq!(out.wct, secs(10 + 6 * 15 + 5));
}

#[test]
fn infinite_lp_gives_critical_path() {
    let program = flat_map(6);
    let ids = program.node().collect_muscles();
    let mut cost = TableCost::new(secs(0));
    for m in &ids {
        let d = match m.id.role {
            MuscleRole::Split => secs(10),
            MuscleRole::Execute => secs(15),
            MuscleRole::Merge => secs(5),
            MuscleRole::Condition => secs(0),
        };
        cost.set(m.id, d);
    }
    let mut sim = SimEngine::new(1000, Arc::new(cost));
    let out = sim.run(&program, (1..=6).collect()).unwrap();
    assert_eq!(out.wct, secs(10 + 15 + 5));
    assert_eq!(sim.telemetry().peak_active(), 6);
}

#[test]
fn limited_lp_paces_the_fan_out() {
    // 6 executes of 15s over 2 workers: 3 waves of 15s.
    let program = flat_map(6);
    let ids = program.node().collect_muscles();
    let mut cost = TableCost::new(secs(0));
    for m in &ids {
        if m.id.role == MuscleRole::Execute {
            cost.set(m.id, secs(15));
        }
    }
    let mut sim = SimEngine::new(2, Arc::new(cost));
    let out = sim.run(&program, (1..=6).collect()).unwrap();
    assert_eq!(out.wct, secs(45));
}

#[test]
fn every_kind_matches_the_reference_interpreter() {
    let program: Skel<i64, i64> = pipe(
        sif(
            |x: &i64| x % 2 == 0,
            sfor(3, seq(|x: i64| x + 1)),
            swhile(|x: &i64| *x < 40, seq(|x: i64| x * 2)),
        ),
        fork(
            |x: i64| vec![x, x, x],
            vec![
                seq(|x: i64| x),
                seq(|x: i64| -x),
                dac(
                    |x: &i64| *x > 4,
                    |x: i64| vec![x / 2, x - x / 2],
                    seq(|x: i64| x * 10),
                    |v: Vec<i64>| v.into_iter().sum(),
                ),
            ],
            |v: Vec<i64>| v.into_iter().sum::<i64>(),
        ),
    );
    let mut sim = SimEngine::new(3, Arc::new(ZeroCost));
    for input in [0, 1, 2, 7, 39, 40, 41, 100] {
        let out = sim.run(&program, input).unwrap();
        assert_eq!(out.result, program.apply(input), "input {input}");
    }
}

#[test]
fn lifo_order_matches_the_papers_observed_schedule() {
    // Nested map, LP 1, costs like §5: the engine must finish one inner
    // branch (split, all its executes, its merge) before touching the next
    // sibling split.
    let inner = map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0]),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let program: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| v.chunks(2).map(|c| c.to_vec()).collect::<Vec<_>>(),
        inner.clone(),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let collector = EventCollector::new();
    let mut sim = SimEngine::new(1, Arc::new(ZeroCost));
    sim.registry().add_listener(collector.clone());
    let out = sim.run(&program, vec![1, 2, 3, 4]).unwrap();
    assert_eq!(out.result, 10);

    let inner_node = inner.id();
    let phases: Vec<(Where, When)> = collector
        .snapshot()
        .into_iter()
        .filter(|e| e.node == inner_node)
        .map(|e| (e.wher, e.when))
        .collect();
    // Two inner instances; each must run contiguously under LP 1:
    // skeleton-b, split pair, nested pairs, merge pair, skeleton-a — twice.
    let one_instance = [
        (Where::Skeleton, When::Before),
        (Where::Split, When::Before),
        (Where::Split, When::After),
        (Where::NestedSkeleton, When::Before),
        (Where::NestedSkeleton, When::Before),
        (Where::NestedSkeleton, When::After),
        (Where::NestedSkeleton, When::After),
        (Where::Merge, When::Before),
        (Where::Merge, When::After),
        (Where::Skeleton, When::After),
    ];
    assert_eq!(phases.len(), 2 * one_instance.len());
    assert_eq!(&phases[..one_instance.len()], &one_instance[..]);
    assert_eq!(&phases[one_instance.len()..], &one_instance[..]);
}

#[test]
fn lp_raise_mid_run_takes_effect() {
    // 8 executes of 10s. LP starts at 1; a listener raises it to 4 when the
    // split finishes. 8 tasks over 4 workers = 2 waves.
    let program = flat_map(8);
    let ids = program.node().collect_muscles();
    let mut cost = TableCost::new(secs(0));
    for m in &ids {
        if m.id.role == MuscleRole::Execute {
            cost.set(m.id, secs(10));
        }
    }
    let mut sim = SimEngine::new(1, Arc::new(cost));
    let lp = sim.lp_control();
    sim.registry().add_filtered(
        EventFilter::all().wher(Where::Split).when(When::After),
        Arc::new(FnListener(
            move |_: &mut askel_events::Payload<'_>, _: &askel_events::Event| {
                lp.request(4);
            },
        )),
    );
    let out = sim.run(&program, (1..=8).collect()).unwrap();
    assert_eq!(out.wct, secs(20));
    assert_eq!(sim.telemetry().peak_active(), 4);
    assert_eq!(sim.lp(), 4, "LP persists after the run");
}

#[test]
fn lp_shrink_never_preempts() {
    // 4 executes of 10s, LP 4; a listener shrinks to 1 right after the
    // split. All four children are already started… no wait: children start
    // after the split completes. Shrink happens at split-after, so only one
    // child may start per wave → 40s.
    let program = flat_map(4);
    let ids = program.node().collect_muscles();
    let mut cost = TableCost::new(secs(0));
    for m in &ids {
        if m.id.role == MuscleRole::Execute {
            cost.set(m.id, secs(10));
        }
    }
    let mut sim = SimEngine::new(4, Arc::new(cost));
    let lp = sim.lp_control();
    sim.registry().add_filtered(
        EventFilter::all().wher(Where::Split).when(When::After),
        Arc::new(FnListener(
            move |_: &mut askel_events::Payload<'_>, _: &askel_events::Event| {
                lp.request(1);
            },
        )),
    );
    let out = sim.run(&program, (1..=4).collect()).unwrap();
    assert_eq!(out.wct, secs(40));
    assert_eq!(sim.telemetry().peak_active(), 1);
}

#[test]
fn runs_are_deterministic() {
    let program: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| v.chunks(3).map(|c| c.to_vec()).collect::<Vec<_>>(),
        flat_map(3),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let run = || -> SimOutcome<i64> {
        let mut sim = SimEngine::new(3, Arc::new(TableCost::new(TimeNs::from_millis(7))));
        sim.run(&program, (1..=9).collect()).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn panic_poisons_the_run() {
    let program: Skel<i64, i64> = seq(|_: i64| -> i64 { panic!("sim muscle failure") });
    let mut sim = SimEngine::new(1, Arc::new(ZeroCost));
    match sim.run(&program, 1) {
        Err(SimError::MusclePanic(m)) => assert!(m.contains("sim muscle failure")),
        other => panic!("unexpected {other:?}"),
    }
    // The engine object survives and can run again.
    let ok: Skel<i64, i64> = seq(|x: i64| x + 1);
    assert_eq!(sim.run(&ok, 1).unwrap().result, 2);
}

#[test]
fn zero_lp_stalls_cleanly() {
    let program: Skel<i64, i64> = seq(|x: i64| x);
    let mut sim = SimEngine::new(0, Arc::new(ZeroCost));
    match sim.run(&program, 1) {
        Err(SimError::Stalled { ready, .. }) => assert_eq!(ready, 1),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn condition_and_split_chain_holds_the_worker() {
    // d&C: cond (2s) then split (3s) happen back-to-back on one worker;
    // with LP 1 and two leaves of 5s each plus leaf conds (2s) and a merge
    // (4s): 2+3 + (2+5) + (2+5) + 4 = 23.
    let program: Skel<i64, i64> = dac(
        |x: &i64| *x >= 2,
        |x: i64| vec![x / 2, x - x / 2],
        seq(|x: i64| x),
        |v: Vec<i64>| v.into_iter().sum(),
    );
    let node = program.node();
    let cond = MuscleId::new(node.id, MuscleRole::Condition);
    let split = MuscleId::new(node.id, MuscleRole::Split);
    let merge = MuscleId::new(node.id, MuscleRole::Merge);
    let fe = MuscleId::new(node.children()[0].id, MuscleRole::Execute);
    let cost = TableCost::new(secs(0))
        .with(cond, secs(2))
        .with(split, secs(3))
        .with(merge, secs(4))
        .with(fe, secs(5));
    let mut sim = SimEngine::new(1, Arc::new(cost));
    let out = sim.run(&program, 2).unwrap();
    assert_eq!(out.result, 2);
    assert_eq!(out.wct, secs(23));
}

#[test]
fn clock_continues_across_runs() {
    let program: Skel<i64, i64> = seq(|x: i64| x);
    let mut sim = SimEngine::new(1, Arc::new(TableCost::new(secs(3))));
    let a = sim.run(&program, 1).unwrap();
    let b = sim.run(&program, 1).unwrap();
    assert_eq!(a.finished_at, secs(3));
    assert_eq!(b.started_at, secs(3));
    assert_eq!(b.finished_at, secs(6));
    assert_eq!(b.wct, secs(3));
}
