//! Pretty-printing of skeleton programs in the paper's grammar notation.
//!
//! [`structure`] renders an AST as the paper writes it — e.g. the running
//! example prints as `map(fs, map(fs, seq(fe), fm), fm)` — which makes logs
//! and error messages immediately comparable with the paper.

use std::fmt::Write as _;
use std::sync::Arc;

use crate::node::{Node, NodeKind};

/// Renders the skeleton structure in grammar notation.
pub fn structure(node: &Arc<Node>) -> String {
    let mut out = String::new();
    write_node(&mut out, node);
    out
}

/// Renders the skeleton structure with node ids attached to every kind
/// (e.g. `map[n3](fs, seq[n4](fe), fm)`), for debugging traces.
pub fn structure_with_ids(node: &Arc<Node>) -> String {
    let mut out = String::new();
    write_node_ids(&mut out, node);
    out
}

fn write_node(out: &mut String, node: &Arc<Node>) {
    match &node.kind {
        NodeKind::Seq { .. } => out.push_str("seq(fe)"),
        NodeKind::Farm { inner } => {
            out.push_str("farm(");
            write_node(out, inner);
            out.push(')');
        }
        NodeKind::Pipe { stages } => {
            out.push_str("pipe(");
            for (i, s) in stages.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_node(out, s);
            }
            out.push(')');
        }
        NodeKind::While { inner, .. } => {
            out.push_str("while(fc, ");
            write_node(out, inner);
            out.push(')');
        }
        NodeKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            out.push_str("if(fc, ");
            write_node(out, then_branch);
            out.push_str(", ");
            write_node(out, else_branch);
            out.push(')');
        }
        NodeKind::For { n, inner } => {
            let _ = write!(out, "for({n}, ");
            write_node(out, inner);
            out.push(')');
        }
        NodeKind::Map { inner, .. } => {
            out.push_str("map(fs, ");
            write_node(out, inner);
            out.push_str(", fm)");
        }
        NodeKind::Fork { inners, .. } => {
            out.push_str("fork(fs, {");
            for (i, s) in inners.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_node(out, s);
            }
            out.push_str("}, fm)");
        }
        NodeKind::DivideConquer { inner, .. } => {
            out.push_str("d&C(fc, fs, ");
            write_node(out, inner);
            out.push_str(", fm)");
        }
    }
}

fn write_node_ids(out: &mut String, node: &Arc<Node>) {
    let tag = node.tag();
    let _ = write!(out, "{tag}[{}]", node.id);
    if let Some(label) = &node.label {
        let _ = write!(out, "'{label}'");
    }
    let children = node.children();
    if !children.is_empty() {
        out.push('(');
        for (i, c) in children.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_node_ids(out, c);
        }
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skel::{dac, fork, map, pipe, seq, sfor, sif, swhile};

    #[test]
    fn renders_the_papers_running_example() {
        let inner = map(
            |v: Vec<i64>| vec![v],
            seq(|v: Vec<i64>| v.len()),
            |c: Vec<usize>| c.into_iter().sum::<usize>(),
        );
        let program = map(
            |v: Vec<i64>| vec![v],
            inner,
            |c: Vec<usize>| c.into_iter().sum::<usize>(),
        );
        assert_eq!(
            structure(program.node()),
            "map(fs, map(fs, seq(fe), fm), fm)"
        );
    }

    #[test]
    fn renders_every_kind() {
        let s = pipe(
            sif(
                |x: &i64| *x > 0,
                swhile(|x: &i64| *x > 0, seq(|x: i64| x - 1)),
                sfor(2, seq(|x: i64| x + 1)),
            ),
            fork(
                |x: i64| vec![x, x],
                vec![
                    seq(|x: i64| x),
                    dac(
                        |x: &i64| *x > 1,
                        |x: i64| vec![x / 2, x - x / 2],
                        seq(|x: i64| x),
                        |v: Vec<i64>| v.into_iter().sum(),
                    ),
                ],
                |v: Vec<i64>| v[0] + v[1],
            ),
        );
        assert_eq!(
            structure(s.node()),
            "pipe(if(fc, while(fc, seq(fe)), for(2, seq(fe))), \
             fork(fs, {seq(fe), d&C(fc, fs, seq(fe), fm)}, fm))"
        );
    }

    #[test]
    fn ids_variant_includes_ids_and_labels() {
        let s = seq(|x: i64| x).labeled("work");
        let rendered = structure_with_ids(s.node());
        assert!(rendered.starts_with("seq[n"));
        assert!(rendered.contains("'work'"));
    }
}
