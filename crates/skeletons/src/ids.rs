//! Stable identifiers for skeleton nodes, muscles and runtime instances.
//!
//! The autonomic layer keys its estimators by [`MuscleId`], so identifiers
//! must be *stable across executions of the same AST*: a node receives its
//! [`NodeId`] once, when constructed, from a process-wide counter, and keeps
//! it for the lifetime of the program. Re-running the same `Skel` therefore
//! accumulates history in the same estimator slots, which is exactly the
//! "history-based estimation" behaviour of the paper.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of one AST node (one syntactic occurrence of a skeleton).
///
/// Allocated from a process-wide counter at construction time; two distinct
/// `seq(...)` calls produce two distinct `NodeId`s, while cloning a
/// [`Skel`](crate::skel::Skel) (or nesting it twice) shares the id — and
/// therefore shares estimator history, like shared muscle objects do in
/// Skandium.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Allocates the next process-unique node id.
    pub fn fresh() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        NodeId(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of one *runtime instance* of a skeleton: each time an engine
/// begins executing some node on some data item it mints a fresh
/// `InstanceId`.
///
/// This is the event parameter the paper calls `i`: it correlates the
/// `Before` and `After` events of the same muscle execution and is the guard
/// (`[idx == i]`) of the state machines in Figs. 3–4.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u64);

impl InstanceId {
    /// Allocates the next process-unique instance id.
    pub fn fresh() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        InstanceId(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Debug for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// The four muscle flavours of the skeleton language.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum MuscleRole {
    /// `fe : P → R` — wraps the sequential business logic.
    Execute,
    /// `fs : P → {R}` — divides a problem into sub-problems.
    Split,
    /// `fm : {P} → R` — combines sub-results.
    Merge,
    /// `fc : P → bool` — drives `while`, `if` and `d&C`.
    Condition,
}

impl fmt::Display for MuscleRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MuscleRole::Execute => "fe",
            MuscleRole::Split => "fs",
            MuscleRole::Merge => "fm",
            MuscleRole::Condition => "fc",
        };
        f.write_str(s)
    }
}

/// Identifier of one muscle: the node it belongs to plus its role within
/// that node.
///
/// This is the estimator key: `t(m)` and `|m|` in the paper are functions of
/// the muscle, and a muscle is uniquely determined by (node, role) because no
/// skeleton kind has two muscles of the same role.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MuscleId {
    /// The AST node owning the muscle.
    pub node: NodeId,
    /// The muscle's role within that node.
    pub role: MuscleRole,
}

impl MuscleId {
    /// Convenience constructor.
    pub fn new(node: NodeId, role: MuscleRole) -> Self {
        MuscleId { node, role }
    }
}

impl fmt::Debug for MuscleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.node, self.role)
    }
}

impl fmt::Display for MuscleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.node, self.role)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ids_are_unique_and_monotonic() {
        let a = NodeId::fresh();
        let b = NodeId::fresh();
        assert_ne!(a, b);
        assert!(b.0 > a.0);
    }

    #[test]
    fn instance_ids_are_unique() {
        let a = InstanceId::fresh();
        let b = InstanceId::fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn muscle_id_display_is_compact() {
        let m = MuscleId::new(NodeId(7), MuscleRole::Split);
        assert_eq!(m.to_string(), "n7.fs");
        assert_eq!(format!("{m:?}"), "n7.fs");
    }

    #[test]
    fn muscle_ids_distinguish_roles() {
        let n = NodeId::fresh();
        assert_ne!(
            MuscleId::new(n, MuscleRole::Split),
            MuscleId::new(n, MuscleRole::Merge)
        );
    }
}
