//! Skandium-style nestable algorithmic skeletons.
//!
//! This crate is the bottom layer of the `autonomic-skeletons` workspace: it
//! defines the skeleton *language* of Pabón & Henrio (PMAM 2014), which is the
//! language of the Skandium Java library:
//!
//! ```text
//! ∆ ::= seq(fe) | farm(∆) | pipe(∆1,∆2) | while(fc,∆) | if(fc,∆t,∆f)
//!     | for(n,∆) | map(fs,∆,fm) | fork(fs,{∆},fm) | d&C(fc,fs,∆,fm)
//! ```
//!
//! Skeletons are parallelism *patterns*; the sequential blocks that fill them
//! with application logic are called **muscles** and come in four flavours
//! (see [`muscle`]):
//!
//! * Execute  `fe: P → R`
//! * Split    `fs: P → {R}`
//! * Merge    `fm: {P} → R`
//! * Condition `fc: P → bool`
//!
//! The public API is the typed [`Skel<P, R>`](skel::Skel) handle and its
//! constructor functions ([`seq`](skel::seq()), [`map`](skel::map()), …), which
//! enforce muscle/skeleton type agreement at compile time and then erase into
//! the runtime representation ([`node::Node`]) that the execution engines
//! (`askel-engine`, `askel-sim`) interpret.
//!
//! The crate also ships a **sequential reference interpreter**
//! ([`seq_eval()`]) that defines the functional semantics every engine must
//! agree with; the engines are property-tested against it.
//!
//! Nothing in this crate spawns threads or measures time; those concerns live
//! in the upper crates so that the same AST can run on a real thread pool or
//! inside the deterministic simulator.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod display;
pub mod ids;
pub mod muscle;
pub mod node;
pub mod rewrite;
pub mod seq_eval;
pub mod skel;
pub mod time;

pub use ids::{InstanceId, MuscleId, MuscleRole, NodeId};
pub use muscle::{Condition, Data, Execute, Merge, Split};
pub use node::{KindTag, MuscleDescriptor, Node, NodeKind};
pub use seq_eval::{seq_eval, EvalError};
pub use skel::{dac, farm, fork, map, pipe, seq, sfor, sif, swhile, Skel};
pub use time::{Clock, ManualClock, RealClock, TimeNs};
