//! Muscles: the sequential blocks that give a skeleton its business logic.
//!
//! The paper (following Skandium) distinguishes four flavours:
//!
//! | flavour   | signature        | used by                      |
//! |-----------|------------------|------------------------------|
//! | Execute   | `fe: P → R`      | `seq`                        |
//! | Split     | `fs: P → {R}`    | `map`, `fork`, `d&C`         |
//! | Merge     | `fm: {P} → R`    | `map`, `fork`, `d&C`         |
//! | Condition | `fc: P → bool`   | `while`, `if`, `d&C`         |
//!
//! The typed traits ([`Execute`], [`Split`], [`Merge`], [`Condition`]) are
//! what users implement — every `Fn` closure of the right shape implements
//! them automatically. The erased wrappers ([`ExecuteFn`] …) are what the
//! runtime representation stores: they operate on [`Data`]
//! (`Box<dyn Any + Send>`) so that heterogeneously-typed skeletons can nest
//! inside one AST. The typed constructors in [`crate::skel`] build the
//! erased closures, so a downcast failure is unreachable through the public
//! API; it panics with a descriptive message if someone hand-assembles an
//! ill-typed [`Node`](crate::node::Node).

use std::any::Any;
use std::sync::Arc;

/// A type-erased value flowing through a skeleton at runtime.
pub type Data = Box<dyn Any + Send>;

/// Execution muscle: wraps the sequential business logic, `fe: P → R`.
pub trait Execute<P, R>: Send + Sync + 'static {
    /// Computes the result for one problem.
    fn execute(&self, p: P) -> R;
}

impl<P, R, F> Execute<P, R> for F
where
    F: Fn(P) -> R + Send + Sync + 'static,
{
    fn execute(&self, p: P) -> R {
        self(p)
    }
}

/// Split muscle: divides a problem into sub-problems, `fs: P → {R}`.
pub trait Split<P, R>: Send + Sync + 'static {
    /// Produces the sub-problem list; its length is the muscle's
    /// *cardinality* (the paper's `|fs|`).
    fn split(&self, p: P) -> Vec<R>;
}

impl<P, R, F> Split<P, R> for F
where
    F: Fn(P) -> Vec<R> + Send + Sync + 'static,
{
    fn split(&self, p: P) -> Vec<R> {
        self(p)
    }
}

/// Merge muscle: combines sub-results, `fm: {P} → R`.
pub trait Merge<P, R>: Send + Sync + 'static {
    /// Combines the sub-results (in sub-problem order).
    fn merge(&self, parts: Vec<P>) -> R;
}

impl<P, R, F> Merge<P, R> for F
where
    F: Fn(Vec<P>) -> R + Send + Sync + 'static,
{
    fn merge(&self, parts: Vec<P>) -> R {
        self(parts)
    }
}

/// Condition muscle: `fc: P → bool`, driving `while`, `if` and `d&C`.
///
/// Takes the value by reference — the value continues into the chosen branch
/// afterwards.
pub trait Condition<P>: Send + Sync + 'static {
    /// Decides whether to iterate / take the then-branch / keep dividing.
    fn test(&self, p: &P) -> bool;
}

impl<P, F> Condition<P> for F
where
    F: Fn(&P) -> bool + Send + Sync + 'static,
{
    fn test(&self, p: &P) -> bool {
        self(p)
    }
}

fn downcast<P: Send + 'static>(d: Data, role: &str) -> P {
    match d.downcast::<P>() {
        Ok(b) => *b,
        Err(_) => panic!(
            "skeleton type mismatch: {role} muscle expected `{}`",
            std::any::type_name::<P>()
        ),
    }
}

/// Type-erased Execute muscle stored in the runtime AST.
#[derive(Clone)]
pub struct ExecuteFn(Arc<dyn Fn(Data) -> Data + Send + Sync>);

impl ExecuteFn {
    /// Erases a typed Execute muscle.
    pub fn new<P, R>(f: impl Execute<P, R>) -> Self
    where
        P: Send + 'static,
        R: Send + 'static,
    {
        ExecuteFn(Arc::new(move |d| {
            Box::new(f.execute(downcast::<P>(d, "execute")))
        }))
    }

    /// Runs the muscle on erased data.
    pub fn call(&self, d: Data) -> Data {
        (self.0)(d)
    }
}

/// Type-erased Split muscle stored in the runtime AST.
#[derive(Clone)]
pub struct SplitFn(Arc<dyn Fn(Data) -> Vec<Data> + Send + Sync>);

impl SplitFn {
    /// Erases a typed Split muscle.
    pub fn new<P, R>(f: impl Split<P, R>) -> Self
    where
        P: Send + 'static,
        R: Send + 'static,
    {
        SplitFn(Arc::new(move |d| {
            f.split(downcast::<P>(d, "split"))
                .into_iter()
                .map(|r| Box::new(r) as Data)
                .collect()
        }))
    }

    /// Runs the muscle on erased data.
    pub fn call(&self, d: Data) -> Vec<Data> {
        (self.0)(d)
    }
}

/// Type-erased Merge muscle stored in the runtime AST.
///
/// The erased closure consumes `Vec<Option<Data>>` — the exact shape a
/// fan-out join accumulates results in — so an engine can hand its slot
/// vector over as-is instead of re-collecting it into a `Vec<Data>`
/// first ([`MergeFn::call_slots`]). `Option<Data>` has the same size as
/// `Data` (niche optimization), so the `Some` wrapper costs nothing.
#[derive(Clone)]
pub struct MergeFn(Arc<dyn Fn(Vec<Option<Data>>) -> Data + Send + Sync>);

impl MergeFn {
    /// Erases a typed Merge muscle.
    pub fn new<P, R>(f: impl Merge<P, R>) -> Self
    where
        P: Send + 'static,
        R: Send + 'static,
    {
        MergeFn(Arc::new(move |parts| {
            let typed: Vec<P> = parts
                .into_iter()
                .map(|d| {
                    let d = d.expect("merge called with an unfilled result slot");
                    downcast::<P>(d, "merge")
                })
                .collect();
            Box::new(f.merge(typed))
        }))
    }

    /// Runs the muscle on erased data.
    pub fn call(&self, parts: Vec<Data>) -> Data {
        (self.0)(parts.into_iter().map(Some).collect())
    }

    /// Runs the muscle on a join's result-slot vector, in sub-problem
    /// order, without re-collecting it. Every slot must be filled;
    /// an unfilled slot is an engine bug and panics.
    pub fn call_slots(&self, parts: Vec<Option<Data>>) -> Data {
        (self.0)(parts)
    }
}

/// Type-erased Condition muscle stored in the runtime AST.
#[derive(Clone)]
pub struct CondFn(Arc<dyn Fn(&Data) -> bool + Send + Sync>);

impl CondFn {
    /// Erases a typed Condition muscle.
    pub fn new<P>(f: impl Condition<P>) -> Self
    where
        P: Send + 'static,
    {
        CondFn(Arc::new(move |d| {
            let p = d.downcast_ref::<P>().unwrap_or_else(|| {
                panic!(
                    "skeleton type mismatch: condition muscle expected `{}`",
                    std::any::type_name::<P>()
                )
            });
            f.test(p)
        }))
    }

    /// Runs the muscle on erased data (by reference; the value flows on).
    pub fn call(&self, d: &Data) -> bool {
        (self.0)(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_erasure_round_trips() {
        let fe = ExecuteFn::new(|x: i64| x * 2);
        let out = fe.call(Box::new(21i64));
        assert_eq!(*out.downcast::<i64>().unwrap(), 42);
    }

    #[test]
    fn split_erasure_preserves_order_and_card() {
        let fs = SplitFn::new(|v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>());
        let parts = fs.call(Box::new(vec![1i64, 2, 3]));
        assert_eq!(parts.len(), 3);
        let first = parts.into_iter().next().unwrap();
        assert_eq!(*first.downcast::<Vec<i64>>().unwrap(), vec![1]);
    }

    #[test]
    fn merge_erasure_collects_in_order() {
        let fm = MergeFn::new(|parts: Vec<i64>| parts.iter().sum::<i64>());
        let out = fm.call(vec![
            Box::new(1i64) as Data,
            Box::new(2i64),
            Box::new(39i64),
        ]);
        assert_eq!(*out.downcast::<i64>().unwrap(), 42);
    }

    #[test]
    fn condition_does_not_consume_value() {
        let fc = CondFn::new(|x: &i64| *x > 0);
        let d: Data = Box::new(5i64);
        assert!(fc.call(&d));
        assert!(fc.call(&d));
        assert_eq!(*d.downcast::<i64>().unwrap(), 5);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn execute_mismatch_panics_with_context() {
        let fe = ExecuteFn::new(|x: i64| x);
        let _ = fe.call(Box::new("not an i64"));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn condition_mismatch_panics_with_context() {
        let fc = CondFn::new(|x: &i64| *x > 0);
        let d: Data = Box::new(1.5f64);
        let _ = fc.call(&d);
    }

    #[test]
    fn struct_muscles_work_too() {
        struct Doubler;
        impl Execute<i64, i64> for Doubler {
            fn execute(&self, p: i64) -> i64 {
                p * 2
            }
        }
        let fe = ExecuteFn::new(Doubler);
        assert_eq!(*fe.call(Box::new(4i64)).downcast::<i64>().unwrap(), 8);
    }
}
