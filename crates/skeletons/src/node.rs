//! The type-erased runtime representation of a skeleton program.
//!
//! A [`Node`] is one syntactic occurrence of a skeleton; [`NodeKind`] stores
//! its muscles (type-erased, see [`crate::muscle`]) and nested skeletons.
//! Execution engines interpret this tree; the autonomic layer walks it to
//! enumerate muscles and to predict the activities a not-yet-executed
//! subtree will produce.

use std::sync::Arc;

use crate::ids::{MuscleId, MuscleRole, NodeId};
use crate::muscle::{CondFn, ExecuteFn, MergeFn, SplitFn};

/// Which of the nine skeleton kinds a node is. Carried in events so
/// listeners and state machines can dispatch without touching the AST.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum KindTag {
    /// `seq(fe)` — wraps an execution muscle.
    Seq,
    /// `farm(∆)` — task replication of the nested skeleton.
    Farm,
    /// `pipe(∆1, …, ∆n)` — staged computation.
    Pipe,
    /// `while(fc, ∆)` — iterate while the condition holds.
    While,
    /// `if(fc, ∆true, ∆false)` — conditional branching.
    If,
    /// `for(n, ∆)` — fixed iteration count.
    For,
    /// `map(fs, ∆, fm)` — single instruction, multiple data.
    Map,
    /// `fork(fs, {∆}, fm)` — multiple instructions, multiple data.
    Fork,
    /// `d&C(fc, fs, ∆, fm)` — divide and conquer.
    DivideConquer,
}

impl KindTag {
    /// Canonical lower-case name as used in the paper's grammar.
    pub fn name(self) -> &'static str {
        match self {
            KindTag::Seq => "seq",
            KindTag::Farm => "farm",
            KindTag::Pipe => "pipe",
            KindTag::While => "while",
            KindTag::If => "if",
            KindTag::For => "for",
            KindTag::Map => "map",
            KindTag::Fork => "fork",
            KindTag::DivideConquer => "d&C",
        }
    }
}

impl std::fmt::Display for KindTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Payload of a [`Node`]: muscles and nested skeletons for each kind.
#[derive(Clone)]
pub enum NodeKind {
    /// `seq(fe)`
    Seq {
        /// The execution muscle.
        fe: ExecuteFn,
    },
    /// `farm(∆)`
    Farm {
        /// The replicated skeleton.
        inner: Arc<Node>,
    },
    /// `pipe(∆1, …, ∆n)` — at least two stages.
    Pipe {
        /// Pipeline stages in order.
        stages: Vec<Arc<Node>>,
    },
    /// `while(fc, ∆)`
    While {
        /// Loop condition.
        fc: CondFn,
        /// Loop body (`P → P`).
        inner: Arc<Node>,
    },
    /// `if(fc, ∆true, ∆false)`
    If {
        /// Branch condition.
        fc: CondFn,
        /// Taken when the condition is true.
        then_branch: Arc<Node>,
        /// Taken when the condition is false.
        else_branch: Arc<Node>,
    },
    /// `for(n, ∆)`
    For {
        /// Iteration count.
        n: usize,
        /// Loop body (`P → P`).
        inner: Arc<Node>,
    },
    /// `map(fs, ∆, fm)`
    Map {
        /// Split muscle.
        fs: SplitFn,
        /// Skeleton applied to every sub-problem.
        inner: Arc<Node>,
        /// Merge muscle.
        fm: MergeFn,
    },
    /// `fork(fs, {∆1, …, ∆k}, fm)` — the split must produce exactly `k`
    /// sub-problems.
    Fork {
        /// Split muscle.
        fs: SplitFn,
        /// One skeleton per sub-problem.
        inners: Vec<Arc<Node>>,
        /// Merge muscle.
        fm: MergeFn,
    },
    /// `d&C(fc, fs, ∆, fm)`
    DivideConquer {
        /// "Keep dividing?" condition.
        fc: CondFn,
        /// Divides a problem into sub-problems of the same type.
        fs: SplitFn,
        /// Base-case skeleton.
        inner: Arc<Node>,
        /// Combines sub-results.
        fm: MergeFn,
    },
}

/// One syntactic occurrence of a skeleton in a program.
pub struct Node {
    /// Stable identity (allocated at construction).
    pub id: NodeId,
    /// Optional human-readable label (shows up in traces and logs).
    pub label: Option<Arc<str>>,
    /// Optional placement annotation: the name of the worker node this
    /// subtree's tasks should run on. `None` (the default) means
    /// "anywhere". The threaded engine ignores placement (all its workers
    /// are local); the simulator's worker models honour it (see
    /// `askel-sim::workers::WorkerModel::slot_matches`).
    pub placement: Option<Arc<str>>,
    /// The skeleton kind and its payload.
    pub kind: NodeKind,
}

impl Node {
    /// Builds a node with a fresh id and no label or placement.
    pub fn new(kind: NodeKind) -> Arc<Node> {
        Arc::new(Node {
            id: NodeId::fresh(),
            label: None,
            placement: None,
            kind,
        })
    }

    /// Which of the nine kinds this node is.
    pub fn tag(&self) -> KindTag {
        match &self.kind {
            NodeKind::Seq { .. } => KindTag::Seq,
            NodeKind::Farm { .. } => KindTag::Farm,
            NodeKind::Pipe { .. } => KindTag::Pipe,
            NodeKind::While { .. } => KindTag::While,
            NodeKind::If { .. } => KindTag::If,
            NodeKind::For { .. } => KindTag::For,
            NodeKind::Map { .. } => KindTag::Map,
            NodeKind::Fork { .. } => KindTag::Fork,
            NodeKind::DivideConquer { .. } => KindTag::DivideConquer,
        }
    }

    /// The directly nested skeletons, in syntactic order.
    pub fn children(&self) -> Vec<&Arc<Node>> {
        match &self.kind {
            NodeKind::Seq { .. } => vec![],
            NodeKind::Farm { inner }
            | NodeKind::While { inner, .. }
            | NodeKind::For { inner, .. }
            | NodeKind::Map { inner, .. }
            | NodeKind::DivideConquer { inner, .. } => vec![inner],
            NodeKind::Pipe { stages } => stages.iter().collect(),
            NodeKind::If {
                then_branch,
                else_branch,
                ..
            } => vec![then_branch, else_branch],
            NodeKind::Fork { inners, .. } => inners.iter().collect(),
        }
    }

    /// The muscle roles this node owns (e.g. `map` owns Split and Merge).
    pub fn own_roles(&self) -> &'static [MuscleRole] {
        match &self.kind {
            NodeKind::Seq { .. } => &[MuscleRole::Execute],
            NodeKind::Farm { .. } | NodeKind::Pipe { .. } | NodeKind::For { .. } => &[],
            NodeKind::While { .. } | NodeKind::If { .. } => &[MuscleRole::Condition],
            NodeKind::Map { .. } | NodeKind::Fork { .. } => &[MuscleRole::Split, MuscleRole::Merge],
            NodeKind::DivideConquer { .. } => {
                &[MuscleRole::Condition, MuscleRole::Split, MuscleRole::Merge]
            }
        }
    }

    /// The muscle ids this node owns.
    pub fn own_muscles(&self) -> Vec<MuscleId> {
        self.own_roles()
            .iter()
            .map(|&role| MuscleId::new(self.id, role))
            .collect()
    }

    /// All muscles in the subtree rooted here, parents before children.
    ///
    /// The autonomic controller uses this to decide whether every muscle has
    /// been estimated at least once (the paper's "the system has to wait
    /// until all muscles have been executed at least once").
    pub fn collect_muscles(self: &Arc<Node>) -> Vec<MuscleDescriptor> {
        let mut out = Vec::new();
        self.walk(&mut |node| {
            for &role in node.own_roles() {
                out.push(MuscleDescriptor {
                    id: MuscleId::new(node.id, role),
                    tag: node.tag(),
                    label: node.label.clone(),
                });
            }
        });
        out
    }

    /// All nodes in the subtree, parents before children (pre-order).
    /// A node nested twice (shared `Arc`) is reported once per occurrence.
    pub fn collect_nodes(self: &Arc<Node>) -> Vec<Arc<Node>> {
        let mut out = Vec::new();
        let mut stack = vec![Arc::clone(self)];
        while let Some(n) = stack.pop() {
            out.push(Arc::clone(&n));
            let mut kids: Vec<Arc<Node>> = n.children().into_iter().map(Arc::clone).collect();
            kids.reverse();
            stack.extend(kids);
        }
        out
    }

    /// Looks a node up by id anywhere in the subtree.
    pub fn find(self: &Arc<Node>, id: NodeId) -> Option<Arc<Node>> {
        self.collect_nodes().into_iter().find(|n| n.id == id)
    }

    /// Number of nodes in the subtree (counting shared nodes once per
    /// occurrence).
    pub fn size(self: &Arc<Node>) -> usize {
        self.collect_nodes().len()
    }

    /// Maximum nesting depth (a lone `seq` has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children().iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// A structural fingerprint of the subtree: a deterministic hash over
    /// the pre-order sequence of (kind, child count, `for` iteration
    /// count, label), ignoring node identity, muscle functions and
    /// placement annotations.
    ///
    /// Two independently constructed trees share a key **iff** they have
    /// the same shape — this is what lets the serving layer share
    /// estimator history across tenants running structurally identical
    /// programs (different `NodeId`s) while keeping structurally
    /// different programs apart. Labels participate in the key, so a
    /// labelled variant can opt out of sharing with its unlabelled twin.
    pub fn structure_key(self: &Arc<Node>) -> u64 {
        // FNV-1a, folded byte by byte: stable across processes and runs
        // (no per-process seed), unlike `DefaultHasher`.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn fold(h: u64, bytes: &[u8]) -> u64 {
            bytes
                .iter()
                .fold(h, |h, &b| (h ^ b as u64).wrapping_mul(PRIME))
        }
        let mut h = OFFSET;
        for node in self.collect_nodes() {
            h = fold(h, node.tag().name().as_bytes());
            h = fold(h, &(node.children().len() as u32).to_le_bytes());
            if let NodeKind::For { n, .. } = &node.kind {
                h = fold(h, &(*n as u64).to_le_bytes());
            }
            match &node.label {
                Some(label) => {
                    h = fold(h, &[1]);
                    h = fold(h, label.as_bytes());
                }
                None => h = fold(h, &[0]),
            }
        }
        h
    }

    fn walk(self: &Arc<Node>, f: &mut impl FnMut(&Arc<Node>)) {
        f(self);
        for c in self.children() {
            c.walk(f);
        }
    }
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.id)
            .field("tag", &self.tag())
            .field("label", &self.label)
            .finish()
    }
}

/// A muscle together with the skeleton kind and label of its owning node.
#[derive(Clone, Debug)]
pub struct MuscleDescriptor {
    /// The muscle's estimator key.
    pub id: MuscleId,
    /// Kind of the owning node.
    pub tag: KindTag,
    /// Label of the owning node, if any.
    pub label: Option<Arc<str>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skel::{map, seq, sfor, sif, swhile};

    fn nested_map() -> Arc<Node> {
        // map(fs, map(fs, seq(fe), fm), fm) — the paper's running example.
        let inner = map(
            |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
            seq(|v: Vec<i64>| v.len() as i64),
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        );
        map(
            |v: Vec<i64>| vec![v.clone(), v],
            inner,
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        )
        .into_node()
    }

    #[test]
    fn nested_map_structure() {
        let n = nested_map();
        assert_eq!(n.tag(), KindTag::Map);
        assert_eq!(n.depth(), 3);
        assert_eq!(n.size(), 3);
        let tags: Vec<_> = n.collect_nodes().iter().map(|n| n.tag()).collect();
        assert_eq!(tags, vec![KindTag::Map, KindTag::Map, KindTag::Seq]);
    }

    #[test]
    fn muscle_collection_covers_all_roles() {
        let n = nested_map();
        let muscles = n.collect_muscles();
        // outer map: fs+fm, inner map: fs+fm, seq: fe
        assert_eq!(muscles.len(), 5);
        let roles: Vec<_> = muscles.iter().map(|m| m.id.role).collect();
        assert_eq!(
            roles,
            vec![
                MuscleRole::Split,
                MuscleRole::Merge,
                MuscleRole::Split,
                MuscleRole::Merge,
                MuscleRole::Execute
            ]
        );
    }

    #[test]
    fn own_roles_per_kind() {
        let w = swhile(|x: &i64| *x > 0, seq(|x: i64| x - 1)).into_node();
        assert_eq!(w.own_roles(), &[MuscleRole::Condition]);
        let f = sfor(3, seq(|x: i64| x + 1)).into_node();
        assert!(f.own_roles().is_empty());
        let i = sif(|x: &i64| *x > 0, seq(|x: i64| x), seq(|x: i64| -x)).into_node();
        assert_eq!(i.own_roles(), &[MuscleRole::Condition]);
    }

    #[test]
    fn find_locates_nested_nodes() {
        let n = nested_map();
        let inner_seq = n.collect_nodes()[2].clone();
        assert_eq!(n.find(inner_seq.id).unwrap().id, inner_seq.id);
        assert!(n.find(NodeId(u64::MAX)).is_none());
    }

    #[test]
    fn structure_key_matches_shape_not_identity() {
        use crate::skel::pipe;
        // Two independently built copies of the same shape share a key…
        let a = pipe(seq(|x: i64| x + 1), seq(|x: i64| x * 2)).into_node();
        let b = pipe(seq(|x: i64| x + 9), seq(|x: i64| x * 7)).into_node();
        assert_ne!(a.id, b.id, "identities differ");
        assert_eq!(a.structure_key(), b.structure_key());
        // …while different shapes do not.
        let three = pipe(seq(|x: i64| x), pipe(seq(|x: i64| x), seq(|x: i64| x))).into_node();
        assert_ne!(a.structure_key(), three.structure_key());
        let lone = seq(|x: i64| x).into_node();
        assert_ne!(a.structure_key(), lone.structure_key());
    }

    #[test]
    fn structure_key_sees_for_count_and_label() {
        let twice = sfor(2, seq(|x: i64| x + 1)).into_node();
        let thrice = sfor(3, seq(|x: i64| x + 1)).into_node();
        assert_ne!(twice.structure_key(), thrice.structure_key());
        let plain = seq(|x: i64| x);
        let labelled = seq(|x: i64| x).labeled("special");
        assert_ne!(
            plain.into_node().structure_key(),
            labelled.into_node().structure_key(),
            "a label opts out of sharing with the unlabelled twin"
        );
    }

    #[test]
    fn pre_order_visits_pipe_stages_in_order() {
        use crate::skel::pipe;
        let p = pipe(seq(|x: i64| x + 1), seq(|x: i64| x * 2)).into_node();
        let nodes = p.collect_nodes();
        assert_eq!(nodes.len(), 3);
        assert_eq!(nodes[0].tag(), KindTag::Pipe);
        // Stage order must be preserved.
        assert!(nodes[1].id < nodes[2].id);
    }
}
