//! Structural rewriting of skeleton trees.
//!
//! Self-configuration (the `askel-adapt` crate) adapts the *structure* of a
//! running skeleton: promoting a sequential leaf to a data-parallel pattern,
//! swapping a fragile muscle for a fallback, and so on. The mechanism lives
//! here, at the bottom of the stack, because it is a pure tree operation:
//! [`Node::replace_subtree`] builds a new tree with one subtree substituted,
//! **sharing** every untouched subtree with the original (persistent-tree
//! style) and **preserving the ids and labels of rebuilt ancestors** so that
//! estimator history keyed by [`MuscleId`](crate::ids::MuscleId) survives the
//! rewrite.
//!
//! The original tree is never mutated: in-flight executions keep their
//! `Arc`'d version while new submissions use the rewritten one — which is
//! exactly what makes safe-point application in a stream session trivially
//! race-free.

use std::sync::Arc;

use crate::ids::NodeId;
use crate::node::{Node, NodeKind};
use crate::skel::Skel;

impl Node {
    /// Returns a new tree in which every occurrence of the node `target`
    /// is replaced by `replacement`, or `None` if `target` does not occur
    /// in this subtree.
    ///
    /// Untouched subtrees are shared with `self`; ancestors on the path to
    /// the replacement are rebuilt with their original id and label (their
    /// estimator history stays addressable). A node nested twice (shared
    /// `Arc`) is replaced at every occurrence, consistent with shared
    /// identity sharing estimator history.
    pub fn replace_subtree(
        self: &Arc<Node>,
        target: NodeId,
        replacement: &Arc<Node>,
    ) -> Option<Arc<Node>> {
        if self.id == target {
            return Some(Arc::clone(replacement));
        }
        // Rebuild one child slot; `None` means the target is not below it.
        let swap = |child: &Arc<Node>| child.replace_subtree(target, replacement);
        // Rebuild a child vector, reporting whether anything changed.
        let swap_vec = |children: &[Arc<Node>]| -> Option<Vec<Arc<Node>>> {
            let mut changed = false;
            let rebuilt: Vec<Arc<Node>> = children
                .iter()
                .map(|c| match swap(c) {
                    Some(new) => {
                        changed = true;
                        new
                    }
                    None => Arc::clone(c),
                })
                .collect();
            changed.then_some(rebuilt)
        };
        let kind = match &self.kind {
            NodeKind::Seq { .. } => return None,
            NodeKind::Farm { inner } => NodeKind::Farm {
                inner: swap(inner)?,
            },
            NodeKind::Pipe { stages } => NodeKind::Pipe {
                stages: swap_vec(stages)?,
            },
            NodeKind::While { fc, inner } => NodeKind::While {
                fc: fc.clone(),
                inner: swap(inner)?,
            },
            NodeKind::If {
                fc,
                then_branch,
                else_branch,
            } => {
                let new_then = swap(then_branch);
                let new_else = swap(else_branch);
                if new_then.is_none() && new_else.is_none() {
                    return None;
                }
                NodeKind::If {
                    fc: fc.clone(),
                    then_branch: new_then.unwrap_or_else(|| Arc::clone(then_branch)),
                    else_branch: new_else.unwrap_or_else(|| Arc::clone(else_branch)),
                }
            }
            NodeKind::For { n, inner } => NodeKind::For {
                n: *n,
                inner: swap(inner)?,
            },
            NodeKind::Map { fs, inner, fm } => NodeKind::Map {
                fs: fs.clone(),
                inner: swap(inner)?,
                fm: fm.clone(),
            },
            NodeKind::Fork { fs, inners, fm } => NodeKind::Fork {
                fs: fs.clone(),
                inners: swap_vec(inners)?,
                fm: fm.clone(),
            },
            NodeKind::DivideConquer { fc, fs, inner, fm } => NodeKind::DivideConquer {
                fc: fc.clone(),
                fs: fs.clone(),
                inner: swap(inner)?,
                fm: fm.clone(),
            },
        };
        Some(Arc::new(Node {
            id: self.id,
            label: self.label.clone(),
            placement: self.placement.clone(),
            kind,
        }))
    }

    /// Returns a copy of this subtree with **every** node's placement
    /// annotation set to `node_name` (ids and labels preserved, so
    /// estimator history keyed by [`MuscleId`](crate::ids::MuscleId)
    /// survives). The original tree is untouched.
    ///
    /// Placement is set deeply because the engines schedule each nested
    /// skeleton's tasks from its *own* node: annotating only the subtree
    /// root would leave its children free to run anywhere.
    pub fn with_placement(self: &Arc<Node>, node_name: &Arc<str>) -> Arc<Node> {
        let place = |child: &Arc<Node>| child.with_placement(node_name);
        let place_vec =
            |children: &[Arc<Node>]| -> Vec<Arc<Node>> { children.iter().map(place).collect() };
        let kind = match &self.kind {
            NodeKind::Seq { fe } => NodeKind::Seq { fe: fe.clone() },
            NodeKind::Farm { inner } => NodeKind::Farm {
                inner: place(inner),
            },
            NodeKind::Pipe { stages } => NodeKind::Pipe {
                stages: place_vec(stages),
            },
            NodeKind::While { fc, inner } => NodeKind::While {
                fc: fc.clone(),
                inner: place(inner),
            },
            NodeKind::If {
                fc,
                then_branch,
                else_branch,
            } => NodeKind::If {
                fc: fc.clone(),
                then_branch: place(then_branch),
                else_branch: place(else_branch),
            },
            NodeKind::For { n, inner } => NodeKind::For {
                n: *n,
                inner: place(inner),
            },
            NodeKind::Map { fs, inner, fm } => NodeKind::Map {
                fs: fs.clone(),
                inner: place(inner),
                fm: fm.clone(),
            },
            NodeKind::Fork { fs, inners, fm } => NodeKind::Fork {
                fs: fs.clone(),
                inners: place_vec(inners),
                fm: fm.clone(),
            },
            NodeKind::DivideConquer { fc, fs, inner, fm } => NodeKind::DivideConquer {
                fc: fc.clone(),
                fs: fs.clone(),
                inner: place(inner),
                fm: fm.clone(),
            },
        };
        Arc::new(Node {
            id: self.id,
            label: self.label.clone(),
            placement: Some(Arc::clone(node_name)),
            kind,
        })
    }
}

impl<P, R> Skel<P, R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    /// Returns a new skeleton with the subtree rooted at `target` replaced
    /// by `replacement`, or `None` if `target` does not occur.
    ///
    /// Like [`Skel::from_node`], the caller asserts that `replacement`
    /// computes the same input/output types as the node it replaces — the
    /// typed rule constructors in `askel-adapt` cannot get this wrong. The
    /// original skeleton is untouched (in-flight executions are unaffected).
    pub fn rewritten(&self, target: NodeId, replacement: &Arc<Node>) -> Option<Skel<P, R>> {
        self.node()
            .replace_subtree(target, replacement)
            .map(Skel::from_node)
    }

    /// Returns a new skeleton in which the subtree rooted at `target`
    /// carries the placement annotation `node_name` on every node
    /// (ancestors rebuilt, ids preserved — see
    /// [`Node::with_placement`]), or `None` if `target` does not occur.
    ///
    /// Placement is purely a scheduling hint: results are identical
    /// wherever the subtree runs, which is what makes an `Offload`
    /// rewrite result-invariant by construction.
    pub fn placed_at(&self, target: NodeId, node_name: &str) -> Option<Skel<P, R>> {
        let name: Arc<str> = Arc::from(node_name);
        let placed = self.node().find(target)?.with_placement(&name);
        self.rewritten(target, &placed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skel::{map, pipe, seq, sif};

    fn counting_map() -> Skel<Vec<i64>, i64> {
        map(
            |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
            seq(|v: Vec<i64>| v[0]),
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        )
    }

    #[test]
    fn replacing_a_leaf_rebuilds_only_the_path() {
        let program = counting_map();
        let leaf = Arc::clone(program.node().children()[0]);
        let replacement = seq(|v: Vec<i64>| v[0] * 10);
        let new = program.rewritten(leaf.id, replacement.node()).unwrap();
        // Root id and label survive; the leaf is the replacement.
        assert_eq!(new.id(), program.id());
        assert_eq!(new.node().children()[0].id, replacement.id());
        // Semantics: every element now scaled by 10.
        assert_eq!(new.apply(vec![1, 2, 3]), 60);
        assert_eq!(program.apply(vec![1, 2, 3]), 6, "original untouched");
    }

    #[test]
    fn replacing_the_root_returns_the_replacement() {
        let program = counting_map();
        let replacement = seq(|v: Vec<i64>| v.len() as i64);
        let new = program.rewritten(program.id(), replacement.node()).unwrap();
        assert_eq!(new.id(), replacement.id());
        assert_eq!(new.apply(vec![5, 5, 5]), 3);
    }

    #[test]
    fn missing_target_returns_none() {
        let program = counting_map();
        let replacement = seq(|v: Vec<i64>| v[0]);
        assert!(program
            .rewritten(NodeId(u64::MAX - 1), replacement.node())
            .is_none());
    }

    #[test]
    fn pipe_stage_replacement_keeps_sibling_shared() {
        let first = seq(|x: i64| x + 1);
        let second = seq(|x: i64| x * 2);
        let program = pipe(first.clone(), second.clone());
        let replacement = seq(|x: i64| x + 100);
        let new = program.rewritten(first.id(), replacement.node()).unwrap();
        // Untouched sibling is the same Arc.
        assert!(Arc::ptr_eq(new.node().children()[1], second.node()));
        assert_eq!(new.apply(1), 202);
        assert_eq!(program.apply(1), 4);
    }

    #[test]
    fn shared_node_is_replaced_at_every_occurrence() {
        let shared = seq(|x: i64| x + 1);
        let program = sif(|x: &i64| *x > 0, shared.clone(), shared.clone());
        let replacement = seq(|x: i64| x - 1);
        let new = program.rewritten(shared.id(), replacement.node()).unwrap();
        assert_eq!(new.apply(5), 4);
        assert_eq!(new.apply(-5), -6);
    }

    #[test]
    fn placed_at_annotates_the_whole_subtree_and_preserves_ids() {
        let program = counting_map();
        let leaf_id = program.node().children()[0].id;
        let placed = program.placed_at(program.id(), "worker-9").unwrap();
        // Every node of the placed subtree carries the annotation...
        for n in placed.node().collect_nodes() {
            assert_eq!(n.placement.as_deref(), Some("worker-9"), "{n:?}");
        }
        // ...with ids preserved (estimator history survives).
        assert_eq!(placed.id(), program.id());
        assert_eq!(placed.node().children()[0].id, leaf_id);
        // The original is untouched and results are identical.
        assert!(program.node().placement.is_none());
        assert_eq!(placed.apply(vec![1, 2, 3]), program.apply(vec![1, 2, 3]));
    }

    #[test]
    fn placed_at_nested_target_leaves_ancestors_unplaced() {
        let program = counting_map();
        let leaf_id = program.node().children()[0].id;
        let placed = program.placed_at(leaf_id, "remote").unwrap();
        assert!(placed.node().placement.is_none(), "root not annotated");
        assert_eq!(
            placed.node().children()[0].placement.as_deref(),
            Some("remote")
        );
        assert_eq!(placed.id(), program.id());
        assert!(placed.placed_at(NodeId(u64::MAX - 3), "x").is_none());
    }

    #[test]
    fn replace_subtree_preserves_ancestor_placement() {
        let program = counting_map().placed_at(counting_map().id(), "ignored");
        // placed_at on a *different* tree's id: None. Use a real one.
        assert!(program.is_none());
        let base = counting_map();
        let placed = base.placed_at(base.id(), "hub").unwrap();
        let leaf = Arc::clone(placed.node().children()[0]);
        let replacement = seq(|v: Vec<i64>| v[0] * 10);
        let new = placed.rewritten(leaf.id, replacement.node()).unwrap();
        assert_eq!(
            new.node().placement.as_deref(),
            Some("hub"),
            "rebuilt ancestors keep their placement"
        );
        // The replacement subtree carries its own (absent) placement.
        assert!(new.node().children()[0].placement.is_none());
    }

    #[test]
    fn nested_replacement_preserves_ancestor_ids() {
        let inner = counting_map();
        let inner_id = inner.id();
        let leaf = Arc::clone(inner.node().children()[0]);
        let program = map(
            |v: Vec<Vec<i64>>| v,
            inner,
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        );
        let replacement = seq(|v: Vec<i64>| v[0] * 2);
        let new = program.rewritten(leaf.id, replacement.node()).unwrap();
        assert_eq!(new.id(), program.id());
        assert_eq!(new.node().children()[0].id, inner_id);
        assert_eq!(new.apply(vec![vec![1, 2], vec![3]]), 12);
    }
}
