//! Sequential reference interpreter.
//!
//! Defines the functional semantics of the skeleton language: both the
//! threaded engine and the simulator must produce results equal to
//! [`seq_eval`] (they are property-tested against it). It is also the
//! "one thread" baseline used for the paper's sequential-WCT figure.

use std::sync::Arc;

use crate::ids::NodeId;
use crate::muscle::Data;
use crate::node::{Node, NodeKind};

/// Structural errors the interpreter can detect.
///
/// Type mismatches inside muscles panic (they are API-misuse bugs, not
/// recoverable conditions); arity errors, however, depend on runtime data
/// and are reported as values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A `fork` split produced a different number of sub-problems than the
    /// fork has branches.
    ForkArityMismatch {
        /// Node where the mismatch happened.
        node: NodeId,
        /// Number of branches in the AST.
        branches: usize,
        /// Number of sub-problems the split produced.
        produced: usize,
    },
    /// A `d&C` condition requested a split that produced no sub-problems,
    /// which would make the recursion vanish without a base case.
    EmptySplit {
        /// Node where the empty split happened.
        node: NodeId,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::ForkArityMismatch {
                node,
                branches,
                produced,
            } => write!(
                f,
                "fork {node}: split produced {produced} sub-problems for {branches} branches"
            ),
            EvalError::EmptySplit { node } => {
                write!(f, "d&C {node}: split produced no sub-problems")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates `node` on `input`, sequentially, on the calling thread.
///
/// Muscles run in the exact dependency order a parallel engine would honour
/// (split → children in order → merge), so any side effects observe a
/// canonical ordering.
pub fn seq_eval(node: &Arc<Node>, input: Data) -> Result<Data, EvalError> {
    match &node.kind {
        NodeKind::Seq { fe } => Ok(fe.call(input)),
        NodeKind::Farm { inner } => seq_eval(inner, input),
        NodeKind::Pipe { stages } => {
            let mut v = input;
            for stage in stages {
                v = seq_eval(stage, v)?;
            }
            Ok(v)
        }
        NodeKind::While { fc, inner } => {
            let mut v = input;
            while fc.call(&v) {
                v = seq_eval(inner, v)?;
            }
            Ok(v)
        }
        NodeKind::If {
            fc,
            then_branch,
            else_branch,
        } => {
            if fc.call(&input) {
                seq_eval(then_branch, input)
            } else {
                seq_eval(else_branch, input)
            }
        }
        NodeKind::For { n, inner } => {
            let mut v = input;
            for _ in 0..*n {
                v = seq_eval(inner, v)?;
            }
            Ok(v)
        }
        NodeKind::Map { fs, inner, fm } => {
            let parts = fs.call(input);
            let mut results = Vec::with_capacity(parts.len());
            for p in parts {
                results.push(Some(seq_eval(inner, p)?));
            }
            Ok(fm.call_slots(results))
        }
        NodeKind::Fork { fs, inners, fm } => {
            let parts = fs.call(input);
            if parts.len() != inners.len() {
                return Err(EvalError::ForkArityMismatch {
                    node: node.id,
                    branches: inners.len(),
                    produced: parts.len(),
                });
            }
            let mut results = Vec::with_capacity(parts.len());
            for (p, branch) in parts.into_iter().zip(inners) {
                results.push(Some(seq_eval(branch, p)?));
            }
            Ok(fm.call_slots(results))
        }
        NodeKind::DivideConquer { fc, fs, inner, fm } => {
            if fc.call(&input) {
                let parts = fs.call(input);
                if parts.is_empty() {
                    return Err(EvalError::EmptySplit { node: node.id });
                }
                let mut results = Vec::with_capacity(parts.len());
                for p in parts {
                    results.push(Some(seq_eval(node, p)?));
                }
                Ok(fm.call_slots(results))
            } else {
                seq_eval(inner, input)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skel::{dac, fork, map, seq, Skel};

    #[test]
    fn fork_arity_mismatch_is_reported() {
        let f: Skel<i64, i64> = fork(
            |x: i64| vec![x, x, x],                 // three parts...
            vec![seq(|x: i64| x), seq(|x: i64| x)], // ...two branches
            |parts: Vec<i64>| parts[0],
        );
        let err = seq_eval(f.node(), Box::new(1i64)).unwrap_err();
        match err {
            EvalError::ForkArityMismatch {
                branches, produced, ..
            } => {
                assert_eq!(branches, 2);
                assert_eq!(produced, 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_dac_split_is_reported() {
        let d: Skel<i64, i64> = dac(
            |_: &i64| true,
            |_: i64| Vec::<i64>::new(),
            seq(|x: i64| x),
            |parts: Vec<i64>| parts.into_iter().sum(),
        );
        let err = seq_eval(d.node(), Box::new(1i64)).unwrap_err();
        assert!(matches!(err, EvalError::EmptySplit { .. }));
    }

    #[test]
    fn nested_error_propagates_out_of_map() {
        let bad_fork: Skel<i64, i64> = fork(
            |x: i64| vec![x, x],
            vec![seq(|x: i64| x)],
            |parts: Vec<i64>| parts[0],
        );
        let m: Skel<Vec<i64>, i64> = map(
            |v: Vec<i64>| v,
            bad_fork,
            |parts: Vec<i64>| parts.into_iter().sum(),
        );
        assert!(seq_eval(m.node(), Box::new(vec![1i64])).is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = EvalError::ForkArityMismatch {
            node: NodeId(3),
            branches: 2,
            produced: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("fork"));
        assert!(msg.contains('5'));
        assert!(msg.contains('2'));
    }
}
