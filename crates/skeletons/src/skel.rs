//! The typed public face of the skeleton language.
//!
//! [`Skel<P, R>`] is a cheaply-cloneable handle to a runtime AST
//! ([`Node`]) plus phantom input/output types. The constructor functions
//! mirror the paper's grammar and enforce that muscles and nested skeletons
//! agree on types *at compile time*; all type information is then erased so
//! heterogeneous skeletons can nest freely inside one tree.
//!
//! ```
//! use askel_skeletons::{map, seq, Skel};
//!
//! // map(fs, map(fs, seq(fe), fm), fm) — the paper's running example,
//! // counting words in a corpus of lines.
//! let inner: Skel<Vec<String>, usize> = map(
//!     |chunk: Vec<String>| chunk.into_iter().map(|l| vec![l]).collect::<Vec<_>>(),
//!     seq(|lines: Vec<String>| lines[0].split_whitespace().count()),
//!     |counts: Vec<usize>| counts.into_iter().sum::<usize>(),
//! );
//! let program: Skel<Vec<String>, usize> = map(
//!     |corpus: Vec<String>| corpus.chunks(2).map(|c| c.to_vec()).collect::<Vec<_>>(),
//!     inner,
//!     |counts: Vec<usize>| counts.into_iter().sum::<usize>(),
//! );
//! let text = vec!["a b".to_string(), "c".to_string(), "d e f".to_string()];
//! assert_eq!(program.apply(text), 6);
//! ```

use std::marker::PhantomData;
use std::sync::Arc;

use crate::ids::NodeId;
use crate::muscle::{CondFn, Condition, Execute, ExecuteFn, Merge, MergeFn, Split, SplitFn};
use crate::node::{Node, NodeKind};
use crate::seq_eval::seq_eval;

/// A typed handle to a skeleton program taking `P` and producing `R`.
///
/// Cloning is cheap (an `Arc` bump) and clones share identity — and thus
/// estimator history in the autonomic layer, exactly like shared skeleton
/// objects do in Skandium.
pub struct Skel<P, R> {
    node: Arc<Node>,
    _types: PhantomData<fn(P) -> R>,
}

impl<P, R> Clone for Skel<P, R> {
    fn clone(&self) -> Self {
        Skel {
            node: Arc::clone(&self.node),
            _types: PhantomData,
        }
    }
}

impl<P, R> std::fmt::Debug for Skel<P, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Skel<{}>({})",
            std::any::type_name::<fn(P) -> R>(),
            self.node.id
        )
    }
}

impl<P, R> Skel<P, R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    /// Wraps an already-erased node.
    ///
    /// The caller asserts that the node really computes `P → R`; prefer the
    /// typed constructors, which cannot get this wrong.
    pub fn from_node(node: Arc<Node>) -> Self {
        Skel {
            node,
            _types: PhantomData,
        }
    }

    /// The underlying runtime AST (shared).
    pub fn node(&self) -> &Arc<Node> {
        &self.node
    }

    /// Consumes the handle, returning the runtime AST.
    pub fn into_node(self) -> Arc<Node> {
        self.node
    }

    /// The root node's stable identity.
    pub fn id(&self) -> NodeId {
        self.node.id
    }

    /// The program's structural fingerprint (see
    /// [`Node::structure_key`]): equal for independently constructed
    /// trees of the same shape, different across shapes. The serving
    /// layer keys shared estimator history on this, so one tenant's
    /// observations can warm another tenant's forecasts when — and only
    /// when — they run structurally identical programs.
    pub fn structure_key(&self) -> u64 {
        self.node.structure_key()
    }

    /// Returns the same skeleton with a human-readable label on its root
    /// node (labels show up in event traces and logs).
    ///
    /// Note this re-wraps the root node (fresh `NodeId`) so the labelled
    /// skeleton has its own estimator history.
    pub fn labeled(self, label: impl Into<String>) -> Self {
        let label: Arc<str> = Arc::from(label.into().into_boxed_str());
        let node = Arc::new(Node {
            id: NodeId::fresh(),
            label: Some(label),
            placement: self.node.placement.clone(),
            kind: self.node.kind.clone(),
        });
        Skel {
            node,
            _types: PhantomData,
        }
    }

    /// Runs the skeleton *sequentially* on the calling thread using the
    /// reference interpreter. Handy for tests and for establishing the
    /// sequential baseline (`WCT` with one thread, the paper's 12.5 s
    /// figure).
    ///
    /// # Panics
    /// Propagates muscle panics and panics on structural errors (e.g. a
    /// `fork` split of the wrong arity) — see [`seq_eval`] for the
    /// `Result`-returning form.
    pub fn apply(&self, input: P) -> R {
        let out = seq_eval(&self.node, Box::new(input)).unwrap_or_else(|e| panic!("{e}"));
        *out.downcast::<R>()
            .expect("reference interpreter returned the wrong type")
    }
}

/// `seq(fe)` — wraps the sequential business logic `fe: P → R`.
pub fn seq<P, R>(fe: impl Execute<P, R>) -> Skel<P, R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    Skel::from_node(Node::new(NodeKind::Seq {
        fe: ExecuteFn::new(fe),
    }))
}

/// `farm(∆)` — task replication: semantically the identity on a single
/// input, it marks the nested skeleton as replicable so concurrent inputs
/// may be processed in parallel.
pub fn farm<P, R>(inner: Skel<P, R>) -> Skel<P, R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    Skel::from_node(Node::new(NodeKind::Farm {
        inner: inner.into_node(),
    }))
}

/// `pipe(∆1, ∆2)` — staged computation: the output of stage 1 feeds
/// stage 2. Stages of *different* inputs overlap when several inputs are
/// in flight.
pub fn pipe<P, Q, R>(first: Skel<P, Q>, second: Skel<Q, R>) -> Skel<P, R>
where
    P: Send + 'static,
    Q: Send + 'static,
    R: Send + 'static,
{
    Skel::from_node(Node::new(NodeKind::Pipe {
        stages: vec![first.into_node(), second.into_node()],
    }))
}

/// `while(fc, ∆)` — runs `∆ : P → P` as long as `fc` holds.
pub fn swhile<P>(fc: impl Condition<P>, inner: Skel<P, P>) -> Skel<P, P>
where
    P: Send + 'static,
{
    Skel::from_node(Node::new(NodeKind::While {
        fc: CondFn::new(fc),
        inner: inner.into_node(),
    }))
}

/// `if(fc, ∆true, ∆false)` — conditional branching.
pub fn sif<P, R>(
    fc: impl Condition<P>,
    then_branch: Skel<P, R>,
    else_branch: Skel<P, R>,
) -> Skel<P, R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    Skel::from_node(Node::new(NodeKind::If {
        fc: CondFn::new(fc),
        then_branch: then_branch.into_node(),
        else_branch: else_branch.into_node(),
    }))
}

/// `for(n, ∆)` — runs `∆ : P → P` exactly `n` times.
pub fn sfor<P>(n: usize, inner: Skel<P, P>) -> Skel<P, P>
where
    P: Send + 'static,
{
    Skel::from_node(Node::new(NodeKind::For {
        n,
        inner: inner.into_node(),
    }))
}

/// `map(fs, ∆, fm)` — splits the problem, applies `∆` to every
/// sub-problem (in parallel under a parallel engine), merges the results.
pub fn map<P, Q, S, R>(fs: impl Split<P, Q>, inner: Skel<Q, S>, fm: impl Merge<S, R>) -> Skel<P, R>
where
    P: Send + 'static,
    Q: Send + 'static,
    S: Send + 'static,
    R: Send + 'static,
{
    Skel::from_node(Node::new(NodeKind::Map {
        fs: SplitFn::new(fs),
        inner: inner.into_node(),
        fm: MergeFn::new(fm),
    }))
}

/// `fork(fs, {∆1, …, ∆k}, fm)` — like `map` but applies *different*
/// skeletons to the sub-problems. The split must produce exactly `k`
/// sub-problems at runtime; engines report a structural error otherwise.
pub fn fork<P, Q, S, R>(
    fs: impl Split<P, Q>,
    inners: Vec<Skel<Q, S>>,
    fm: impl Merge<S, R>,
) -> Skel<P, R>
where
    P: Send + 'static,
    Q: Send + 'static,
    S: Send + 'static,
    R: Send + 'static,
{
    assert!(!inners.is_empty(), "fork requires at least one branch");
    Skel::from_node(Node::new(NodeKind::Fork {
        fs: SplitFn::new(fs),
        inners: inners.into_iter().map(Skel::into_node).collect(),
        fm: MergeFn::new(fm),
    }))
}

/// `d&C(fc, fs, ∆, fm)` — divide and conquer: while `fc` holds the problem
/// is split by `fs` and each part recurses; otherwise the base skeleton `∆`
/// solves it. Sub-results are merged bottom-up by `fm`.
pub fn dac<P, R>(
    fc: impl Condition<P>,
    fs: impl Split<P, P>,
    inner: Skel<P, R>,
    fm: impl Merge<R, R>,
) -> Skel<P, R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    Skel::from_node(Node::new(NodeKind::DivideConquer {
        fc: CondFn::new(fc),
        fs: SplitFn::new(fs),
        inner: inner.into_node(),
        fm: MergeFn::new(fm),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_applies_muscle() {
        let s = seq(|x: i64| x + 1);
        assert_eq!(s.apply(41), 42);
    }

    #[test]
    fn clones_share_identity() {
        let s = seq(|x: i64| x + 1);
        let t = s.clone();
        assert_eq!(s.id(), t.id());
    }

    #[test]
    fn labeled_mints_fresh_identity() {
        let s = seq(|x: i64| x + 1);
        let t = s.clone().labeled("inc");
        assert_ne!(s.id(), t.id());
        assert_eq!(t.node().label.as_deref(), Some("inc"));
        assert_eq!(t.apply(1), 2);
    }

    #[test]
    fn pipe_composes() {
        let p = pipe(seq(|x: i64| x + 1), seq(|x: i64| x * 2));
        assert_eq!(p.apply(20), 42);
    }

    #[test]
    fn map_splits_and_merges() {
        let m = map(
            |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
            seq(|v: Vec<i64>| v[0] * 10),
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        );
        assert_eq!(m.apply(vec![1, 2, 3]), 60);
    }

    #[test]
    fn swhile_iterates_until_false() {
        let w = swhile(|x: &i64| *x < 10, seq(|x: i64| x + 3));
        assert_eq!(w.apply(0), 12);
        assert_eq!(w.apply(100), 100); // zero iterations
    }

    #[test]
    fn sfor_iterates_exactly_n_times() {
        let f = sfor(5, seq(|x: i64| x * 2));
        assert_eq!(f.apply(1), 32);
        let z = sfor(0, seq(|x: i64| x * 2));
        assert_eq!(z.apply(7), 7);
    }

    #[test]
    fn sif_takes_both_branches() {
        let i = sif(|x: &i64| *x >= 0, seq(|x: i64| x), seq(|x: i64| -x));
        assert_eq!(i.apply(5), 5);
        assert_eq!(i.apply(-5), 5);
    }

    #[test]
    fn fork_routes_parts_to_distinct_branches() {
        let f = fork(
            |p: (i64, i64)| vec![p.0, p.1],
            vec![seq(|x: i64| x + 1), seq(|x: i64| x * 10)],
            |parts: Vec<i64>| (parts[0], parts[1]),
        );
        assert_eq!(f.apply((1, 2)), (2, 20));
    }

    #[test]
    fn dac_mergesorts() {
        let sort = dac(
            |v: &Vec<i64>| v.len() > 2,
            |v: Vec<i64>| {
                let mid = v.len() / 2;
                let (a, b) = v.split_at(mid);
                vec![a.to_vec(), b.to_vec()]
            },
            seq(|mut v: Vec<i64>| {
                v.sort_unstable();
                v
            }),
            |parts: Vec<Vec<i64>>| {
                let mut it = parts.into_iter();
                let mut acc = it.next().unwrap_or_default();
                for part in it {
                    let mut merged = Vec::with_capacity(acc.len() + part.len());
                    let (mut i, mut j) = (0, 0);
                    while i < acc.len() && j < part.len() {
                        if acc[i] <= part[j] {
                            merged.push(acc[i]);
                            i += 1;
                        } else {
                            merged.push(part[j]);
                            j += 1;
                        }
                    }
                    merged.extend_from_slice(&acc[i..]);
                    merged.extend_from_slice(&part[j..]);
                    acc = merged;
                }
                acc
            },
        );
        assert_eq!(sort.apply(vec![5, 3, 8, 1, 9, 2]), vec![1, 2, 3, 5, 8, 9]);
        assert_eq!(sort.apply(vec![]), Vec::<i64>::new());
    }

    #[test]
    fn farm_is_identity_on_one_input() {
        let f = farm(seq(|x: i64| x * 3));
        assert_eq!(f.apply(14), 42);
    }

    #[test]
    fn heterogeneous_nesting_type_checks() {
        // String → words → per-word lengths → total, through three types.
        let inner: Skel<String, usize> = seq(|w: String| w.len());
        let m: Skel<String, usize> = map(
            |s: String| s.split_whitespace().map(str::to_owned).collect::<Vec<_>>(),
            inner,
            |lens: Vec<usize>| lens.into_iter().sum(),
        );
        assert_eq!(m.apply("ab cde f".to_string()), 6);
    }

    #[test]
    #[should_panic(expected = "at least one branch")]
    fn empty_fork_is_rejected() {
        let _ = fork(
            |x: i64| vec![x],
            Vec::<Skel<i64, i64>>::new(),
            |parts: Vec<i64>| parts[0],
        );
    }
}
