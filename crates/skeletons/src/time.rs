//! Time representation shared by the real engine and the simulator.
//!
//! The paper's autonomic machinery is defined over *wall-clock time* but is
//! otherwise platform independent; we make that explicit by routing every
//! timestamp through the [`Clock`] trait. The threaded engine uses
//! [`RealClock`] (monotonic, nanoseconds since engine start) while the
//! discrete-event simulator drives a [`ManualClock`] forward in virtual time.
//! All autonomic computations (`askel-core`) are pure functions of `TimeNs`
//! values and therefore behave identically under either clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A point in time (or a duration), in integer nanoseconds.
///
/// One type serves for both points and durations — the autonomic formulas of
/// the paper (`tf = ti + t(m)`) freely mix the two, and keeping a single
/// integer representation makes schedules exactly reproducible (no float
/// drift in comparisons).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TimeNs(pub u64);

impl TimeNs {
    /// The zero time (engine start / simulation start).
    pub const ZERO: TimeNs = TimeNs(0);

    /// Largest representable time; used as "+∞" by the schedulers.
    pub const MAX: TimeNs = TimeNs(u64::MAX);

    /// Builds a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        TimeNs(s * 1_000_000_000)
    }

    /// Builds a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        TimeNs(ms * 1_000_000)
    }

    /// Builds a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        TimeNs(us * 1_000)
    }

    /// Builds a time from fractional seconds (clamped at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return TimeNs(0);
        }
        TimeNs((s * 1e9).round() as u64)
    }

    /// This time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction (`self - rhs`, floored at zero).
    pub fn saturating_sub(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0.saturating_add(rhs.0))
    }

    /// The later of two times (the schedulers' `max` over predecessors).
    pub fn max(self, rhs: TimeNs) -> TimeNs {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The earlier of two times.
    pub fn min(self, rhs: TimeNs) -> TimeNs {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Add for TimeNs {
    type Output = TimeNs;
    fn add(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0 + rhs.0)
    }
}

impl AddAssign for TimeNs {
    fn add_assign(&mut self, rhs: TimeNs) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeNs {
    type Output = TimeNs;
    fn sub(self, rhs: TimeNs) -> TimeNs {
        TimeNs(self.0 - rhs.0)
    }
}

impl fmt::Debug for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Source of timestamps for event emission and autonomic analysis.
///
/// Implementations must be monotonic: `now()` never decreases.
pub trait Clock: Send + Sync {
    /// The current time.
    fn now(&self) -> TimeNs;
}

/// Monotonic wall-clock, reporting nanoseconds since its creation.
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// Creates a clock whose zero is "now".
    pub fn new() -> Self {
        RealClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> TimeNs {
        let d = self.epoch.elapsed();
        TimeNs(d.as_nanos().min(u64::MAX as u128) as u64)
    }
}

/// A clock advanced explicitly by its owner; the simulator's virtual time.
///
/// `advance_to` is monotone: attempts to move backwards are ignored, so the
/// clock can be shared freely between the simulator loop and listeners.
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Arc<Self> {
        Arc::new(ManualClock {
            now: AtomicU64::new(0),
        })
    }

    /// Creates a clock at the given time.
    pub fn starting_at(t: TimeNs) -> Arc<Self> {
        Arc::new(ManualClock {
            now: AtomicU64::new(t.0),
        })
    }

    /// Moves the clock forward to `t`; ignored if `t` is in the past.
    pub fn advance_to(&self, t: TimeNs) {
        self.now.fetch_max(t.0, Ordering::SeqCst);
    }

    /// Moves the clock forward by `d`.
    pub fn advance_by(&self, d: TimeNs) {
        self.now.fetch_add(d.0, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> TimeNs {
        TimeNs(self.now.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(TimeNs::from_secs(3).as_secs_f64(), 3.0);
        assert_eq!(TimeNs::from_millis(1500), TimeNs::from_secs_f64(1.5));
        assert_eq!(TimeNs::from_micros(2_000), TimeNs::from_millis(2));
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(TimeNs::from_secs_f64(-1.0), TimeNs::ZERO);
        assert_eq!(TimeNs::from_secs_f64(f64::NAN), TimeNs::ZERO);
        assert_eq!(TimeNs::from_secs_f64(f64::NEG_INFINITY), TimeNs::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = TimeNs::from_secs(2);
        let b = TimeNs::from_secs(5);
        assert_eq!(a + b, TimeNs::from_secs(7));
        assert_eq!(b - a, TimeNs::from_secs(3));
        assert_eq!(a.saturating_sub(b), TimeNs::ZERO);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn real_clock_is_monotonic() {
        let c = RealClock::new();
        let t1 = c.now();
        let t2 = c.now();
        assert!(t2 >= t1);
    }

    #[test]
    fn manual_clock_never_goes_backwards() {
        let c = ManualClock::new();
        c.advance_to(TimeNs(100));
        c.advance_to(TimeNs(40));
        assert_eq!(c.now(), TimeNs(100));
        c.advance_by(TimeNs(10));
        assert_eq!(c.now(), TimeNs(110));
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(TimeNs::from_secs(2).to_string(), "2.000s");
        assert_eq!(TimeNs::from_millis(5).to_string(), "5.000ms");
        assert_eq!(TimeNs(120).to_string(), "120ns");
    }
}
