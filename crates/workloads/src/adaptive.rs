//! The adaptive word-count scenario: the paper's evaluation program recast
//! as a *self-configuring* stream workload.
//!
//! A stream of tweet corpora flows through `pipe(filter, count)`:
//!
//! * the **filter** stage validates a corpus. The initial, fast
//!   implementation ([`fragile_filter`]) panics on corrupt records (lines
//!   containing [`POISON`]); its fallback ([`robust_filter`]) drops them
//!   instead — the structural *fallback-swap* target.
//! * the **count** stage tallies `#hashtags` and `@mentions`. The initial
//!   implementation ([`seq_count`]) is a sequential leaf; its promotion
//!   ([`par_count`]) is a `map` whose chunk width reads a shared counter a
//!   width-retuning rule can drive — the *seq → map promotion* target.
//!
//! On clean input every combination computes identical counts (the map
//!   merge is associative), so structural adaptation never changes results
//! — only failure behaviour and parallel shape.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use askel_skeletons::{map, pipe, seq, Skel};

use crate::wordcount::{chunk_lines, count_tokens, merge_counts, Counts};

/// Marker token that makes [`fragile_filter`] panic — a stand-in for the
/// corrupt records real ingestion pipelines hit.
pub const POISON: &str = "#corrupt";

/// The fast-but-fragile validation stage: passes a corpus through
/// unchanged, panicking on the first poisoned line.
pub fn fragile_filter() -> Skel<Vec<String>, Vec<String>> {
    seq(|lines: Vec<String>| {
        if let Some(bad) = lines.iter().find(|l| l.contains(POISON)) {
            panic!("corrupt record: {bad}");
        }
        lines
    })
    .labeled("filter-fragile")
}

/// The fallback validation stage: silently drops poisoned lines. On clean
/// input it is byte-for-byte the identity, like [`fragile_filter`].
pub fn robust_filter() -> Skel<Vec<String>, Vec<String>> {
    seq(|lines: Vec<String>| {
        lines
            .into_iter()
            .filter(|l| !l.contains(POISON))
            .collect::<Vec<String>>()
    })
    .labeled("filter-robust")
}

/// The sequential count stage (the promotion target).
pub fn seq_count() -> Skel<Vec<String>, Counts> {
    seq(|lines: Vec<String>| count_tokens(&lines)).labeled("count-seq")
}

/// The promoted count stage: `map(fs, seq(fe), fm)` whose split produces
/// `width` chunks (read per execution, so a width-retuning rule can drive
/// it between items). Computes the same counts as [`seq_count`] on every
/// input.
pub fn par_count(width: Arc<AtomicUsize>) -> Skel<Vec<String>, Counts> {
    map(
        move |lines: Vec<String>| chunk_lines(lines, width.load(Ordering::SeqCst).max(1)),
        seq(|chunk: Vec<String>| count_tokens(&chunk)),
        merge_counts,
    )
    .labeled("count-par")
}

/// The full scenario: the initial program plus the replacement subtrees a
/// self-configuration rule set swaps in.
pub struct AdaptiveWordCount {
    /// `pipe(fragile_filter, seq_count)` — the program as deployed.
    pub program: Skel<Vec<String>, Counts>,
    /// The filter stage inside `program` (fallback-swap target).
    pub filter: Skel<Vec<String>, Vec<String>>,
    /// The robust replacement for `filter`.
    pub robust: Skel<Vec<String>, Vec<String>>,
    /// The count stage inside `program` (promotion target).
    pub count: Skel<Vec<String>, Counts>,
    /// The data-parallel replacement for `count`.
    pub parallel: Skel<Vec<String>, Counts>,
    /// The chunk width `parallel`'s split reads per execution.
    pub width: Arc<AtomicUsize>,
}

impl AdaptiveWordCount {
    /// Builds the scenario with the parallel count splitting into
    /// `initial_width` chunks until a rule retunes it.
    pub fn new(initial_width: usize) -> Self {
        let width = Arc::new(AtomicUsize::new(initial_width.max(1)));
        let filter = fragile_filter();
        let robust = robust_filter();
        let count = seq_count();
        let parallel = par_count(Arc::clone(&width));
        let program = pipe(filter.clone(), count.clone()).labeled("adaptive-wordcount");
        AdaptiveWordCount {
            program,
            filter,
            robust,
            count,
            parallel,
            width,
        }
    }

    /// The reference result for a corpus: what every structural variant
    /// computes on input that passes (or has been stripped by) the filter.
    pub fn reference(&self, corpus: &[String]) -> Counts {
        let clean: Vec<String> = corpus
            .iter()
            .filter(|l| !l.contains(POISON))
            .cloned()
            .collect();
        count_tokens(&clean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tweets::{generate_corpus, TweetGenConfig};

    fn corpus(n: usize) -> Vec<String> {
        generate_corpus(&TweetGenConfig::with_tweets(n))
    }

    #[test]
    fn all_variants_agree_on_clean_input() {
        let wc = AdaptiveWordCount::new(3);
        let input = corpus(120);
        let reference = wc.reference(&input);
        assert_eq!(wc.program.apply(input.clone()), reference);
        assert_eq!(wc.count.apply(input.clone()), reference);
        assert_eq!(wc.parallel.apply(input.clone()), reference);
        assert_eq!(wc.robust.apply(input.clone()), input);
    }

    #[test]
    fn width_changes_do_not_change_counts() {
        let wc = AdaptiveWordCount::new(1);
        let input = corpus(60);
        let reference = wc.reference(&input);
        for width in [1, 2, 7, 64] {
            wc.width.store(width, Ordering::SeqCst);
            assert_eq!(wc.parallel.apply(input.clone()), reference);
        }
    }

    #[test]
    #[should_panic(expected = "corrupt record")]
    fn fragile_filter_panics_on_poison() {
        let mut input = corpus(5);
        input.push(format!("una linea {POISON} mala"));
        fragile_filter().apply(input);
    }

    #[test]
    fn robust_filter_drops_poison_and_reference_matches() {
        let wc = AdaptiveWordCount::new(2);
        let mut input = corpus(20);
        input.push(format!("hola {POISON} #tema1"));
        let filtered = wc.robust.apply(input.clone());
        assert_eq!(filtered.len(), input.len() - 1);
        // The robust program end-to-end equals the reference.
        let robust_program = pipe(wc.robust.clone(), wc.count.clone());
        assert_eq!(robust_program.apply(input.clone()), wc.reference(&input));
    }
}
