//! Deterministic workloads for evaluating autonomic skeletons.
//!
//! The paper's evaluation (§5) counts hashtags and commented-users over
//! 1.2 million Colombian tweets (July 25 – August 5, 2013). That corpus is
//! no longer available (the Google Drive link is dead), so [`tweets`]
//! generates a synthetic corpus with the same *cost structure*: a stream
//! of short texts with Zipf-distributed hashtags and @-mentions, fully
//! determined by a seed. [`wordcount`] provides the paper's program —
//! `map(fs, map(fs, seq(fe), fm), fm)` — over that corpus.
//!
//! [`numeric`] adds the kernels used by the examples and the wider test
//! suite: a d&C mergesort, a Monte-Carlo π map, and a parse/aggregate
//! pipeline.
//!
//! [`adaptive`] recasts the word count as a *self-configuring* stream
//! workload for `askel-adapt`: a fragile filter stage with a robust
//! fallback, and a sequential count stage with a width-tunable parallel
//! promotion.
//!
//! [`oscillating`] adds the adversarial stream for knob hysteresis and
//! cluster offloading: item sizes flip between a low and a high phase on
//! a fixed period, processed by a width-knobbed (and placement-invariant)
//! sum-of-squares map.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod numeric;
pub mod oscillating;
pub mod tweets;
pub mod wordcount;

pub use adaptive::AdaptiveWordCount;
pub use oscillating::{GrainedSquareSum, KnobbedSquareSum, OscillatingLoad};
pub use tweets::{generate_corpus, TweetGenConfig};
pub use wordcount::{count_tokens, merge_counts, Counts, WordCountProgram};
