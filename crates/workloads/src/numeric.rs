//! Numeric kernels used by examples, tests and benches: a d&C mergesort, a
//! Monte-Carlo π map, and a parse/aggregate pipeline.

use askel_skeletons::{dac, map, pipe, seq, Skel};

/// Merges two sorted runs (helper for [`mergesort`]).
fn merge_sorted(parts: Vec<Vec<i64>>) -> Vec<i64> {
    let mut it = parts.into_iter();
    let mut acc = it.next().unwrap_or_default();
    for part in it {
        let mut merged = Vec::with_capacity(acc.len() + part.len());
        let (mut i, mut j) = (0, 0);
        while i < acc.len() && j < part.len() {
            if acc[i] <= part[j] {
                merged.push(acc[i]);
                i += 1;
            } else {
                merged.push(part[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&acc[i..]);
        merged.extend_from_slice(&part[j..]);
        acc = merged;
    }
    acc
}

/// Divide-and-conquer mergesort: divides while the slice is longer than
/// `threshold`, sorts base cases sequentially, merges sorted runs.
pub fn mergesort(threshold: usize) -> Skel<Vec<i64>, Vec<i64>> {
    let threshold = threshold.max(2);
    dac(
        move |v: &Vec<i64>| v.len() > threshold,
        |v: Vec<i64>| {
            let mid = v.len() / 2;
            let (a, b) = v.split_at(mid);
            vec![a.to_vec(), b.to_vec()]
        },
        seq(|mut v: Vec<i64>| {
            v.sort_unstable();
            v
        }),
        merge_sorted,
    )
}

/// Monte-Carlo π over `chunks` chunks of `samples_per_chunk` pseudo-random
/// points each (deterministic per chunk index).
///
/// Input: the base seed. Output: the π estimate.
pub fn monte_carlo_pi(chunks: usize, samples_per_chunk: usize) -> Skel<u64, f64> {
    let chunks = chunks.max(1);
    map(
        move |seed: u64| (0..chunks as u64).map(|k| (seed, k)).collect::<Vec<_>>(),
        seq(move |(seed, k): (u64, u64)| {
            // SplitMix64-driven uniform points; no shared state.
            let mut state = seed ^ (k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut next = move || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut inside = 0u64;
            for _ in 0..samples_per_chunk {
                let x = next() as f64 / u64::MAX as f64;
                let y = next() as f64 / u64::MAX as f64;
                if x * x + y * y <= 1.0 {
                    inside += 1;
                }
            }
            inside
        }),
        move |parts: Vec<u64>| {
            let inside: u64 = parts.iter().sum();
            4.0 * inside as f64 / (chunks * samples_per_chunk) as f64
        },
    )
}

/// A record parsed by the [`stats_pipeline`].
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Measurement key.
    pub key: String,
    /// Measurement value.
    pub value: f64,
}

/// Summary statistics produced by the [`stats_pipeline`].
#[derive(Clone, Debug, PartialEq)]
pub struct Stats {
    /// Records parsed.
    pub count: usize,
    /// Sum of values.
    pub sum: f64,
    /// Minimum value (0 when empty).
    pub min: f64,
    /// Maximum value (0 when empty).
    pub max: f64,
}

/// `pipe(seq(parse), seq(aggregate))`: parses `key=value` lines, then
/// aggregates summary statistics — the staged-computation example.
pub fn stats_pipeline() -> Skel<Vec<String>, Stats> {
    pipe(
        seq(|lines: Vec<String>| {
            lines
                .iter()
                .filter_map(|l| {
                    let (key, value) = l.split_once('=')?;
                    Some(Record {
                        key: key.trim().to_string(),
                        value: value.trim().parse().ok()?,
                    })
                })
                .collect::<Vec<Record>>()
        }),
        seq(|records: Vec<Record>| {
            let count = records.len();
            let sum: f64 = records.iter().map(|r| r.value).sum();
            let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
            for r in &records {
                min = min.min(r.value);
                max = max.max(r.value);
            }
            if count == 0 {
                min = 0.0;
                max = 0.0;
            }
            Stats {
                count,
                sum,
                min,
                max,
            }
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mergesort_sorts() {
        let s = mergesort(4);
        let input: Vec<i64> = (0..100).map(|i| (i * 31) % 57 - 20).collect();
        let mut expected = input.clone();
        expected.sort_unstable();
        assert_eq!(s.apply(input), expected);
        assert_eq!(s.apply(vec![]), Vec::<i64>::new());
        assert_eq!(s.apply(vec![3]), vec![3]);
    }

    #[test]
    fn merge_sorted_is_stable_merge() {
        assert_eq!(
            merge_sorted(vec![vec![1, 4, 6], vec![2, 3, 5]]),
            vec![1, 2, 3, 4, 5, 6]
        );
        assert_eq!(merge_sorted(vec![]), Vec::<i64>::new());
    }

    #[test]
    fn pi_is_roughly_pi() {
        let s = monte_carlo_pi(8, 20_000);
        let pi = s.apply(42);
        assert!((pi - std::f64::consts::PI).abs() < 0.05, "got {pi}");
    }

    #[test]
    fn pi_is_deterministic_for_a_seed() {
        let s = monte_carlo_pi(4, 1_000);
        assert_eq!(s.apply(7), s.apply(7));
        assert_ne!(s.apply(7), s.apply(8));
    }

    #[test]
    fn pipeline_parses_and_aggregates() {
        let s = stats_pipeline();
        let input = vec![
            "a=1.5".to_string(),
            "b=2.5".to_string(),
            "malformed".to_string(),
            "c=-1".to_string(),
        ];
        let stats = s.apply(input);
        assert_eq!(stats.count, 3);
        assert_eq!(stats.sum, 3.0);
        assert_eq!(stats.min, -1.0);
        assert_eq!(stats.max, 2.5);
    }

    #[test]
    fn pipeline_handles_empty_input() {
        let s = stats_pipeline();
        let stats = s.apply(vec![]);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.min, 0.0);
    }
}
