//! The oscillating-load scenario: a stream whose item sizes flip between
//! a low and a high phase on a fixed period — the adversarial input for
//! knob [`Hysteresis`] (a naive retune rule would flap its knob once per
//! phase) and, over a skewed cluster, the driver for `Offload` +
//! `ProvisioningPolicy` decisions.
//!
//! Everything here is deterministic: sizes are a pure square wave and the
//! program's muscles are pure functions, so the same scenario replays
//! identically on the threaded engine and the simulator.
//!
//! [`Hysteresis`]: https://docs.rs/askel-adapt

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use askel_skeletons::{map, seq, Skel};

/// A square-wave load: `period` items of `low` elements, then `period`
/// items of `high` elements, repeating.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OscillatingLoad {
    /// Item size during the low phase.
    pub low: usize,
    /// Item size during the high phase.
    pub high: usize,
    /// Items per phase (≥ 1).
    pub period: usize,
}

impl OscillatingLoad {
    /// A load oscillating between `low`- and `high`-element items every
    /// `period` items (`period` clamped to ≥ 1).
    pub fn new(low: usize, high: usize, period: usize) -> Self {
        OscillatingLoad {
            low,
            high,
            period: period.max(1),
        }
    }

    /// The size of the `k`-th item (0-based).
    pub fn size_of(&self, k: usize) -> usize {
        if (k / self.period).is_multiple_of(2) {
            self.low
        } else {
            self.high
        }
    }

    /// The sizes of the first `items` items.
    pub fn sizes(&self, items: usize) -> Vec<usize> {
        (0..items).map(|k| self.size_of(k)).collect()
    }

    /// Deterministic inputs of those sizes: item `k` is
    /// `[k, k+1, …, k+size−1]` (as `i64`).
    pub fn inputs(&self, items: usize) -> Vec<Vec<i64>> {
        (0..items)
            .map(|k| (0..self.size_of(k)).map(|i| (k + i) as i64).collect())
            .collect()
    }
}

/// A width-knobbed sum-of-squares map: `map(fs, seq(fe), fm)` whose split
/// produces `width` chunks, read per execution from a shared counter a
/// `RetuneWidth` rule can drive. The merge is associative, so the result
/// is invariant under both the knob value and the subtree's placement —
/// exactly the contract `Offload` and the hysteresis proptests rely on.
pub struct KnobbedSquareSum {
    /// The program (`Vec<i64> → i64`).
    pub program: Skel<Vec<i64>, i64>,
    /// The chunk-count knob the split reads per execution.
    pub width: Arc<AtomicUsize>,
}

impl KnobbedSquareSum {
    /// Builds the program splitting into `initial_width` chunks until a
    /// rule retunes it.
    pub fn new(initial_width: usize) -> Self {
        let width = Arc::new(AtomicUsize::new(initial_width.max(1)));
        let w = Arc::clone(&width);
        let program = map(
            move |v: Vec<i64>| {
                let chunks = w.load(Ordering::SeqCst).max(1);
                let per = v.len().div_ceil(chunks).max(1);
                v.chunks(per).map(|c| c.to_vec()).collect::<Vec<_>>()
            },
            seq(|chunk: Vec<i64>| chunk.iter().map(|x| x * x).sum::<i64>()),
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        )
        .labeled("knobbed-square-sum");
        KnobbedSquareSum { program, width }
    }

    /// The reference result for one input, computed without the skeleton.
    pub fn reference(input: &[i64]) -> i64 {
        input.iter().map(|x| x * x).sum()
    }
}

/// A grain-knobbed sum-of-squares map: the split cuts the input into
/// chunks of `grain` **elements** (read per execution), so the leaf's
/// duration tracks `min(grain, len)` — under an [`OscillatingLoad`] the
/// leaf-duration EWMA swings across a `RetuneGrain` rule's target band
/// and a naive rule flaps the knob every phase. Result-invariant across
/// the knob's whole range and any placement (associative merge).
pub struct GrainedSquareSum {
    /// The program (`Vec<i64> → i64`).
    pub program: Skel<Vec<i64>, i64>,
    /// Elements per chunk, read by the split per execution.
    pub grain: Arc<AtomicUsize>,
}

impl GrainedSquareSum {
    /// Builds the program chunking by `initial_grain` elements until a
    /// rule retunes it.
    pub fn new(initial_grain: usize) -> Self {
        let grain = Arc::new(AtomicUsize::new(initial_grain.max(1)));
        let g = Arc::clone(&grain);
        let program = map(
            move |v: Vec<i64>| {
                let grain = g.load(Ordering::SeqCst).max(1);
                if v.is_empty() {
                    return vec![Vec::new()];
                }
                v.chunks(grain).map(|c| c.to_vec()).collect::<Vec<_>>()
            },
            seq(|chunk: Vec<i64>| chunk.iter().map(|x| x * x).sum::<i64>()),
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        )
        .labeled("grained-square-sum");
        GrainedSquareSum { program, grain }
    }

    /// The reference result for one input, computed without the skeleton.
    pub fn reference(input: &[i64]) -> i64 {
        input.iter().map(|x| x * x).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_wave_alternates_by_period() {
        let load = OscillatingLoad::new(4, 100, 3);
        assert_eq!(
            load.sizes(9),
            vec![4, 4, 4, 100, 100, 100, 4, 4, 4],
            "three low, three high, three low"
        );
        let inputs = load.inputs(4);
        assert_eq!(inputs[0], vec![0, 1, 2, 3]);
        assert_eq!(inputs[3].len(), 100);
        assert_eq!(inputs[3][0], 3);
    }

    #[test]
    fn zero_period_is_clamped() {
        let load = OscillatingLoad::new(1, 2, 0);
        assert_eq!(load.period, 1);
        assert_eq!(load.sizes(4), vec![1, 2, 1, 2]);
    }

    #[test]
    fn knobbed_sum_is_width_invariant() {
        let k = KnobbedSquareSum::new(1);
        let input: Vec<i64> = (0..37).collect();
        let reference = KnobbedSquareSum::reference(&input);
        for width in [1, 2, 5, 64, 1000] {
            k.width.store(width, Ordering::SeqCst);
            assert_eq!(k.program.apply(input.clone()), reference, "width {width}");
        }
    }

    #[test]
    fn grained_sum_is_grain_invariant() {
        let g = GrainedSquareSum::new(1);
        let input: Vec<i64> = (0..53).collect();
        let reference = GrainedSquareSum::reference(&input);
        for grain in [1, 4, 32, 1 << 20] {
            g.grain.store(grain, Ordering::SeqCst);
            assert_eq!(g.program.apply(input.clone()), reference, "grain {grain}");
        }
        g.grain.store(8, Ordering::SeqCst);
        assert_eq!(g.program.apply(vec![]), 0, "empty input splits cleanly");
    }

    #[test]
    fn knobbed_sum_is_placement_invariant() {
        let k = KnobbedSquareSum::new(4);
        let placed = k.program.placed_at(k.program.id(), "somewhere").unwrap();
        let input: Vec<i64> = (0..16).collect();
        assert_eq!(
            placed.apply(input.clone()),
            KnobbedSquareSum::reference(&input)
        );
    }
}
