//! Synthetic tweet corpus generation.
//!
//! Substitutes the paper's 1.2 M Colombian tweets (see DESIGN.md §4): the
//! autonomic behaviour depends on the *cost structure* of the word-count
//! (chunk sizes, token distribution shaping hash-map sizes), not on the
//! tweet contents, so a seeded generator with Zipf-distributed hashtags
//! and mentions preserves everything the experiment exercises.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Corpus generator configuration.
#[derive(Clone, Debug)]
pub struct TweetGenConfig {
    /// Number of tweets (the paper used 1.2 M).
    pub tweets: usize,
    /// RNG seed; same seed ⇒ byte-identical corpus.
    pub seed: u64,
    /// Distinct hashtags available (Zipf-distributed usage).
    pub hashtag_pool: usize,
    /// Distinct users available for @-mentions (Zipf-distributed).
    pub mention_pool: usize,
    /// Zipf exponent (1.0 ≈ natural language popularity).
    pub zipf_exponent: f64,
}

impl Default for TweetGenConfig {
    fn default() -> Self {
        TweetGenConfig {
            tweets: 10_000,
            seed: 2013_0725, // the paper corpus's start date

            hashtag_pool: 500,
            mention_pool: 2_000,
            zipf_exponent: 1.0,
        }
    }
}

impl TweetGenConfig {
    /// A config producing `tweets` tweets with the default pools.
    pub fn with_tweets(tweets: usize) -> Self {
        TweetGenConfig {
            tweets,
            ..Default::default()
        }
    }
}

/// Cumulative Zipf distribution for O(log n) sampling.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, exponent: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n.max(1));
        let mut total = 0.0;
        for k in 1..=n.max(1) {
            total += 1.0 / (k as f64).powf(exponent);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Samples a 0-based rank.
    fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

const FILLER: &[&str] = &[
    "que", "buen", "dia", "hoy", "vamos", "gracias", "por", "todo", "este", "partido", "gol",
    "nunca", "siempre", "mejor", "jaja", "feliz", "con", "los", "amigos", "para", "nada", "bien",
];

/// Generates a deterministic synthetic corpus: one string per tweet.
pub fn generate_corpus(cfg: &TweetGenConfig) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let hashtags = Zipf::new(cfg.hashtag_pool, cfg.zipf_exponent);
    let mentions = Zipf::new(cfg.mention_pool, cfg.zipf_exponent);
    let mut corpus = Vec::with_capacity(cfg.tweets);
    let mut text = String::with_capacity(160);
    for _ in 0..cfg.tweets {
        text.clear();
        let words = rng.gen_range(4..=12);
        for w in 0..words {
            if w > 0 {
                text.push(' ');
            }
            text.push_str(FILLER[rng.gen_range(0..FILLER.len())]);
        }
        for _ in 0..rng.gen_range(0..=3u32) {
            text.push_str(" #tema");
            let tag = hashtags.sample(&mut rng);
            text.push_str(&tag.to_string());
        }
        for _ in 0..rng.gen_range(0..=2u32) {
            text.push_str(" @usuario");
            let user = mentions.sample(&mut rng);
            text.push_str(&user.to_string());
        }
        corpus.push(text.clone());
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = TweetGenConfig::with_tweets(200);
        let a = generate_corpus(&cfg);
        let b = generate_corpus(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = TweetGenConfig::with_tweets(100);
        let a = generate_corpus(&cfg);
        cfg.seed += 1;
        let b = generate_corpus(&cfg);
        assert_ne!(a, b);
    }

    #[test]
    fn corpus_contains_hashtags_and_mentions() {
        let cfg = TweetGenConfig::with_tweets(500);
        let corpus = generate_corpus(&cfg);
        let tags = corpus.iter().filter(|t| t.contains('#')).count();
        let ats = corpus.iter().filter(|t| t.contains('@')).count();
        assert!(tags > 100, "too few hashtag tweets: {tags}");
        assert!(ats > 100, "too few mention tweets: {ats}");
    }

    #[test]
    fn zipf_is_head_heavy() {
        // Rank 0 must be sampled far more often than rank 50.
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50] * 5);
        assert!(counts[0] > counts[10]);
    }

    #[test]
    fn zipf_handles_tiny_pools() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}
