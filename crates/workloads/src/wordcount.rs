//! The paper's evaluation program: hashtag / commented-user count as two
//! nested maps — `map(fs, map(fs, seq(fe), fm), fm)` (§5).
//!
//! * outer `fs` — splits the corpus into `outer_chunks` chunks (the paper
//!   reads the input file here, which is why its first split costs 6.4 s
//!   and "there is no need for more than one thread" during it);
//! * inner `fs` — splits a chunk into `inner_chunks` sub-chunks;
//! * `fe` — counts `#hashtags` and `@commented-users` into a hash map;
//! * `fm` — merges partial counts (both levels use the same function, and
//!   the paper's Listing 1 uses the same *muscle object*, which is what
//!   [`WordCountProgram::shared_muscle_aliases`] models).

use std::collections::HashMap;

use askel_skeletons::{map, seq, MuscleId, MuscleRole, NodeId, Skel};

/// Token → occurrences.
pub type Counts = HashMap<String, u64>;

/// Counts `#…` and `@…` tokens in the given tweets.
pub fn count_tokens(lines: &[String]) -> Counts {
    let mut counts = Counts::new();
    for line in lines {
        for token in line.split_whitespace() {
            if token.starts_with('#') || token.starts_with('@') {
                let token = token.trim_end_matches(|c: char| !c.is_alphanumeric());
                *counts.entry(token.to_string()).or_insert(0) += 1;
            }
        }
    }
    counts
}

/// Merges partial counts into a global count.
pub fn merge_counts(parts: Vec<Counts>) -> Counts {
    let mut it = parts.into_iter();
    let mut total = it.next().unwrap_or_default();
    for part in it {
        for (token, n) in part {
            *total.entry(token).or_insert(0) += n;
        }
    }
    total
}

/// Splits `lines` into at most `chunks` nearly-equal chunks.
pub fn chunk_lines(lines: Vec<String>, chunks: usize) -> Vec<Vec<String>> {
    let chunks = chunks.max(1);
    if lines.is_empty() {
        return vec![Vec::new()];
    }
    let per = lines.len().div_ceil(chunks);
    let mut out = Vec::with_capacity(chunks);
    let mut rest = lines;
    while !rest.is_empty() {
        let tail = rest.split_off(per.min(rest.len()));
        out.push(rest);
        rest = tail;
    }
    out
}

/// The paper's nested-map word count with its node identities exposed so
/// cost models and controllers can address individual muscles.
pub struct WordCountProgram {
    /// The skeleton: corpus in, global counts out.
    pub skel: Skel<Vec<String>, Counts>,
    /// Outer map node.
    pub outer: NodeId,
    /// Inner map node.
    pub inner: NodeId,
    /// `seq(fe)` leaf node.
    pub leaf: NodeId,
}

impl WordCountProgram {
    /// Builds the program: the outer split produces `outer_chunks` chunks,
    /// each inner split produces `inner_chunks` sub-chunks.
    pub fn new(outer_chunks: usize, inner_chunks: usize) -> Self {
        let leaf = seq(|lines: Vec<String>| count_tokens(&lines));
        let leaf_id = leaf.id();
        let inner = map(
            move |chunk: Vec<String>| chunk_lines(chunk, inner_chunks),
            leaf,
            merge_counts,
        );
        let inner_id = inner.id();
        let skel = map(
            move |corpus: Vec<String>| chunk_lines(corpus, outer_chunks),
            inner,
            merge_counts,
        );
        let outer_id = skel.id();
        WordCountProgram {
            skel,
            outer: outer_id,
            inner: inner_id,
            leaf: leaf_id,
        }
    }

    /// Muscle id helper.
    pub fn muscle(&self, node: NodeId, role: MuscleRole) -> MuscleId {
        MuscleId::new(node, role)
    }

    /// The shared-muscle aliases of the paper's Listing 1: the inner map
    /// uses the *same* `fs` and `fm` objects as the outer map, so their
    /// estimators are shared (`inner → outer` as canonical).
    pub fn shared_muscle_aliases(&self) -> Vec<(MuscleId, MuscleId)> {
        vec![
            (
                MuscleId::new(self.inner, MuscleRole::Split),
                MuscleId::new(self.outer, MuscleRole::Split),
            ),
            (
                MuscleId::new(self.inner, MuscleRole::Merge),
                MuscleId::new(self.outer, MuscleRole::Merge),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tweets::{generate_corpus, TweetGenConfig};

    #[test]
    fn counts_hashtags_and_mentions_only() {
        let lines = vec![
            "hola #tema1 mundo @usuario5".to_string(),
            "#tema1 otra vez #tema2".to_string(),
            "sin tokens aqui".to_string(),
        ];
        let c = count_tokens(&lines);
        assert_eq!(c.get("#tema1"), Some(&2));
        assert_eq!(c.get("#tema2"), Some(&1));
        assert_eq!(c.get("@usuario5"), Some(&1));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn punctuation_is_trimmed() {
        let lines = vec!["fin #tema1, y #tema1!".to_string()];
        let c = count_tokens(&lines);
        assert_eq!(c.get("#tema1"), Some(&2));
    }

    #[test]
    fn merge_accumulates() {
        let a = Counts::from([("#a".into(), 2u64)]);
        let b = Counts::from([("#a".into(), 3u64), ("#b".into(), 1u64)]);
        let m = merge_counts(vec![a, b]);
        assert_eq!(m.get("#a"), Some(&5));
        assert_eq!(m.get("#b"), Some(&1));
        assert!(merge_counts(vec![]).is_empty());
    }

    #[test]
    fn chunking_covers_everything_in_order() {
        let lines: Vec<String> = (0..10).map(|i| i.to_string()).collect();
        let chunks = chunk_lines(lines.clone(), 3);
        assert_eq!(chunks.len(), 3);
        let flat: Vec<String> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, lines);
        // More chunks than lines: each chunk ≥ 1 line.
        let chunks = chunk_lines(lines.clone(), 100);
        assert_eq!(chunks.len(), 10);
        // Empty corpus: a single empty chunk keeps the skeleton total.
        assert_eq!(chunk_lines(vec![], 4), vec![Vec::<String>::new()]);
    }

    #[test]
    fn program_counts_like_the_flat_function() {
        let corpus = generate_corpus(&TweetGenConfig::with_tweets(300));
        let program = WordCountProgram::new(5, 7);
        let direct = count_tokens(&corpus);
        let via_skeleton = program.skel.apply(corpus);
        assert_eq!(via_skeleton, direct);
    }

    #[test]
    fn aliases_point_inner_to_outer() {
        let p = WordCountProgram::new(5, 7);
        let aliases = p.shared_muscle_aliases();
        assert_eq!(aliases.len(), 2);
        for (m, canon) in aliases {
            assert_eq!(m.node, p.inner);
            assert_eq!(canon.node, p.outer);
            assert_eq!(m.role, canon.role);
        }
    }
}
