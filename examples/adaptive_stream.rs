//! Self-configuration end to end: a stream whose skeleton **reshapes
//! itself** while items flow.
//!
//! The adaptive word count (`askel_workloads::adaptive`) runs
//! `pipe(filter, count)` over a stream of tweet corpora and demonstrates
//! three structural rewrites, all applied at safe points between items and
//! all announced through `(After, Reconfigured)` events:
//!
//! 1. **promotion** — once the EWMA of observed corpus sizes crosses a
//!    threshold, the sequential count leaf is replaced by a data-parallel
//!    `map` version (seq → map);
//! 2. **width retune** — once the promoted split has executed, its chunk
//!    width is retuned to the pool's level of parallelism;
//! 3. **fallback-swap** — after two consecutive item errors (corrupt
//!    records crashing the fast filter), the filter is swapped for a
//!    robust fallback that drops corrupt lines, and the stream recovers.
//!
//! Run with: `cargo run --example adaptive_stream`

use std::sync::Arc;

use autonomic_skeletons::prelude::*;
use autonomic_skeletons::skeletons::MuscleId;
use autonomic_skeletons::workloads::adaptive::{AdaptiveWordCount, POISON};
use autonomic_skeletons::workloads::{generate_corpus, TweetGenConfig};

fn main() {
    // The fragile filter *panics* on corrupt records; the engine catches
    // the panic and poisons only that item. Replace the default hook so
    // the demonstration prints one line instead of a backtrace.
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "muscle panic".to_string());
        println!("  muscle panicked (caught by the engine): {msg}");
    }));

    let wc = AdaptiveWordCount::new(4);
    let engine = Engine::new(2);

    // Print every Reconfigured event as it is emitted.
    engine.registry().add_filtered(
        EventFilter::all().wher(Where::Reconfigured),
        Arc::new(FnListener(
            |_: &mut Payload<'_>, e: &autonomic_skeletons::events::Event| {
                println!("  event: {} (node {})", e.paper_notation(), e.node);
            },
        )),
    );

    // The trigger engine listens to the same event stream as everything
    // else and hosts the three rules.
    let trigger = TriggerEngine::new(0.5);
    engine.registry().add_listener(trigger.clone());
    trigger.add_rule(
        Promote::new(&wc.count, &wc.parallel)
            .named("promote-count")
            .when(Trigger::InputSizeAtLeast(200.0)),
    );
    let par_split = MuscleId::new(wc.parallel.id(), MuscleRole::Split);
    trigger.add_rule(
        RetuneWidth::new(Knob::from_shared("count-width", Arc::clone(&wc.width)), 3)
            .bounds(2, 64)
            .when(Trigger::CardinalityAtLeast(par_split, 1.0)),
    );
    trigger.add_rule(FallbackSwap::new(&wc.filter, &wc.robust, 2).named("swap-filter"));

    let mut stream = AdaptiveSession::new(&engine, &wc.program, trigger.clone())
        .input_size(|corpus: &Vec<String>| corpus.len());

    // The item schedule: small clean corpora, then large ones (promotion
    // territory), then corrupt ones (two crash the fragile filter, the
    // swap rescues the rest), then more clean traffic.
    let mut items: Vec<Vec<String>> = Vec::new();
    for _ in 0..3 {
        items.push(generate_corpus(&TweetGenConfig::with_tweets(40)));
    }
    for _ in 0..3 {
        items.push(generate_corpus(&TweetGenConfig::with_tweets(600)));
    }
    for _ in 0..3 {
        let mut corpus = generate_corpus(&TweetGenConfig::with_tweets(500));
        corpus.push(format!("registro dañado {POISON} @usuario1"));
        items.push(corpus);
    }
    items.push(generate_corpus(&TweetGenConfig::with_tweets(300)));

    println!(
        "feeding {} corpora through pipe(filter, count):",
        items.len()
    );
    let mut results = Vec::new();
    for item in &items {
        stream.feed(item.clone());
        results.push(stream.next_result().expect("one in flight"));
    }

    // Audit trail: the decision log is symmetric to the WCT controller's
    // analysis log.
    println!("decision log:");
    for d in trigger.decision_log() {
        println!(
            "  v{} by `{}`: {} — because {}",
            d.version, d.rule, d.action, d.why
        );
    }

    // Check the stream against the reference: every successful item
    // computed exactly the reference counts; only the two corrupt items
    // consumed by the error streak failed.
    let mut errors = Vec::new();
    for (i, (item, result)) in items.iter().zip(&results).enumerate() {
        match result {
            Ok(counts) => assert_eq!(counts, &wc.reference(item), "item {i} diverged"),
            Err(_) => errors.push(i),
        }
    }
    println!(
        "{} items ok, {} errors (items {:?}) before the fallback-swap",
        results.len() - errors.len(),
        errors.len(),
        errors
    );
    assert_eq!(errors.len(), 2, "exactly the two streak items fail");
    assert_eq!(stream.version(), 3, "promotion + width retune + fallback");
    assert!(
        trigger.decision_log().len() == 3,
        "three audited structural rewrites"
    );
    engine.shutdown();
    println!("stream recovered and reshaped itself; results match the reference");
}
