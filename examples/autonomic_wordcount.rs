//! The paper's §5 evaluation in miniature: the autonomic word-count with a
//! Wall-Clock-Time goal, on the deterministic simulator. Prints the
//! active-thread timeline (the Figs. 5–7 series) and the controller's
//! decision log.
//!
//! Run with: `cargo run --example autonomic_wordcount`

use std::sync::Arc;

use autonomic_skeletons::prelude::*;
use autonomic_skeletons::workloads::tweets::{generate_corpus, TweetGenConfig};
use autonomic_skeletons::workloads::wordcount::WordCountProgram;

fn main() {
    // The paper's program: map(fs, map(fs, seq(fe), fm), fm).
    let program = WordCountProgram::new(5, 7);
    let corpus = generate_corpus(&TweetGenConfig::with_tweets(2_000));

    // Cost model shaped like the paper's testbed: outer split 6.4s (file
    // read), inner splits ≈7× faster, fe/fm 40ms.
    let mut table = TableCost::new(TimeNs::from_millis(40));
    table.set(
        program.muscle(program.outer, MuscleRole::Split),
        TimeNs::from_millis(6_400),
    );
    table.set(
        program.muscle(program.inner, MuscleRole::Split),
        TimeNs::from_micros(914_286),
    );

    // WCT goal 9.5s, at most 24 threads, estimates initialized from a
    // previous run — the paper's "Goal with initialization" scenario.
    let mut config = ControllerConfig::new(TimeNs::from_millis(9_500), 24).initial_lp(1);
    for (m, canonical) in program.shared_muscle_aliases() {
        config = config.alias(m, canonical);
    }

    // Warm-up run (cold estimates).
    let mut auto = AutonomicSim::new(program.skel.clone(), config.clone(), Arc::new(table));
    let cold = auto.run(corpus.clone()).expect("cold run failed");
    let snapshot = auto.controller().snapshot();
    println!(
        "cold run:        wct {:.2}s, {} decisions",
        cold.wct.as_secs_f64(),
        auto.controller().decisions().len()
    );

    // Initialized run.
    let table2 = {
        let mut t = TableCost::new(TimeNs::from_millis(40));
        t.set(
            program.muscle(program.outer, MuscleRole::Split),
            TimeNs::from_millis(6_400),
        );
        t.set(
            program.muscle(program.inner, MuscleRole::Split),
            TimeNs::from_micros(914_286),
        );
        t
    };
    let mut auto2 = AutonomicSim::new(program.skel.clone(), config, Arc::new(table2));
    auto2.init_estimates(&snapshot);
    let warm = auto2.run(corpus).expect("warm run failed");

    println!(
        "initialized run: wct {:.2}s (goal 9.5s, paper: 8.4s)",
        warm.wct.as_secs_f64()
    );
    println!("\ndecision log (initialized run):");
    for d in auto2.controller().decisions() {
        println!(
            "  t={:>5.2}s  LP {:>2} -> {:<2} ({:?}, predicted WCT {:.2}s)",
            d.at.as_secs_f64(),
            d.from_lp,
            d.to_lp,
            d.reason,
            d.predicted_wct.as_secs_f64()
        );
    }
    println!("\nactive-thread timeline (initialized run):");
    for p in auto2.sim().telemetry().active_timeline() {
        println!("  {:>8.0}ms  {}", p.at.as_millis_f64(), p.active);
    }
    assert!(warm.wct <= TimeNs::from_millis(9_500));
    assert!(warm.wct < cold.wct, "initialization must help");
}
