//! Divide & conquer on the threaded engine: mergesort as
//! `d&C(fc, fs, seq(sort), fm)`, with the level of parallelism changed
//! while the skeleton runs.
//!
//! Run with: `cargo run --example dc_mergesort`

use autonomic_skeletons::prelude::*;
use autonomic_skeletons::workloads::numeric::mergesort;

fn main() {
    let sort: Skel<Vec<i64>, Vec<i64>> = mergesort(1_000);

    let input: Vec<i64> = (0..200_000)
        .map(|i| (i * 1_103_515_245 + 12_345) % 100_000)
        .collect();
    let mut expected = input.clone();
    expected.sort_unstable();

    let engine = Engine::new(1);
    println!("sorting {} integers on 1 worker…", input.len());
    let t0 = std::time::Instant::now();
    let sorted = engine.submit(&sort, input.clone()).get().unwrap();
    println!("  done in {:?}", t0.elapsed());
    assert_eq!(sorted, expected);

    // Grow the pool mid-flight: submit, then raise the LP.
    engine.set_lp(4);
    println!("sorting again on 4 workers…");
    let t0 = std::time::Instant::now();
    let future = engine.submit(&sort, input);
    let sorted = future.get().unwrap();
    println!("  done in {:?}", t0.elapsed());
    assert_eq!(sorted, expected);

    let telemetry = engine.pool().telemetry();
    println!(
        "peak concurrent activities: {} (tasks run: {})",
        telemetry.peak_active(),
        telemetry.tasks_finished()
    );
    engine.shutdown();
}
