//! The paper's future work, realized: the same centralised autonomic
//! controller scaling a *distributed* set of workers — a local master node
//! plus a remote node whose tasks pay a communication round-trip and run
//! on slower hardware (asymmetric node speeds). Per-node utilization is
//! surfaced through the cluster's telemetry handle.
//!
//! Run with: `cargo run --example distributed_cluster`

use std::sync::Arc;

use autonomic_skeletons::dist::{Cluster, NodeSpec};
use autonomic_skeletons::prelude::*;

fn main() {
    // 16 chunks of heavy work (2s each in virtual time).
    let program: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0] * v[0]),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let muscles = program.node().collect_muscles();
    let mut cost = TableCost::new(TimeNs::from_millis(20));
    for m in &muscles {
        if m.id.role == MuscleRole::Execute {
            cost.set(m.id, TimeNs::from_secs(2));
        }
    }

    // A cluster: 2 local slots, plus 12 remote slots at 300ms round-trip
    // running at 80% of the master's speed (asymmetric hardware).
    let cluster = Cluster::new(vec![
        NodeSpec::local("master", 2),
        NodeSpec::remote("worker-node", 12, TimeNs::from_millis(300)).with_speed(0.8),
    ])
    .with_capacity(1);
    let node_names: Vec<String> = cluster.nodes().iter().map(|n| n.name().into()).collect();
    let telemetry = cluster.telemetry();

    let mut sim = SimEngine::with_workers(Box::new(cluster), Arc::new(cost));
    let lp = sim.lp_control();
    let controller = autonomic_skeletons::core::AutonomicController::new(
        program.node().clone(),
        ControllerConfig::new(TimeNs::from_secs(9), 14).initial_lp(1),
        Arc::new(autonomic_skeletons::core::FnActuator(move |n| {
            lp.request(n)
        })),
    );
    controller.with_estimates(|est| {
        for m in &muscles {
            let d = if m.id.role == MuscleRole::Execute {
                TimeNs::from_secs(2)
            } else {
                TimeNs::from_millis(20)
            };
            est.init_duration(m.id, d);
            if m.id.role == MuscleRole::Split {
                est.init_cardinality(m.id, 16.0);
            }
        }
    });
    sim.registry().add_listener(controller.clone());

    let out = sim.run(&program, (1..=16).collect()).expect("run failed");
    println!(
        "result {} in {:.2}s (goal 9s; sequential ≈ 32s; remote node at 0.8× speed)",
        out.result,
        out.wct.as_secs_f64()
    );
    println!("controller decisions (workers added/removed centrally):");
    for d in controller.decisions() {
        println!(
            "  t={:>5.2}s  workers {:>2} -> {:<2} ({:?})",
            d.at.as_secs_f64(),
            d.from_lp,
            d.to_lp,
            d.reason
        );
    }
    println!("per-node busy time (scaled durations + round-trips):");
    let busy = telemetry.busy_per_node();
    for (name, busy) in node_names.iter().zip(&busy) {
        println!("  {name:<12} {:.2}s busy", busy.as_secs_f64());
    }
    assert!(out.wct <= TimeNs::from_secs(9));
    assert!(
        busy.iter().all(|b| *b > TimeNs::ZERO),
        "both nodes must have been recruited"
    );
}
