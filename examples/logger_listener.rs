//! The paper's Listing 2: a generic logger listener registered on all
//! events of a skeleton — non-functional code with zero changes to the
//! muscles.
//!
//! Run with: `cargo run --example logger_listener`

use std::sync::Arc;

use autonomic_skeletons::events::util::LoggerListener;
use autonomic_skeletons::prelude::*;

fn main() {
    // A small nested map so the event stream stays readable.
    let program: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| v.chunks(2).map(|c| c.to_vec()).collect::<Vec<_>>(),
        seq(|chunk: Vec<i64>| chunk.into_iter().sum::<i64>()),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );

    let engine = Engine::new(2);

    // Listing 2's logger: CURRSKEL / WHEN/WHERE / INDEX / partial solution,
    // executed on the same thread as the related muscle.
    engine
        .registry()
        .add_listener(Arc::new(LoggerListener::new(|line| println!("{line}"))));

    // A second listener that *transforms* the partial solution (the
    // paper's motivating use: e.g. encrypting partial results): here it
    // doubles every leaf result after the execute muscle.
    engine.registry().add_filtered(
        EventFilter::all()
            .kind(autonomic_skeletons::skeletons::KindTag::Seq)
            .when(When::After)
            .wher(Where::Skeleton),
        Arc::new(FnListener(
            |payload: &mut Payload<'_>, _event: &autonomic_skeletons::events::Event| {
                if let Some(x) = payload.downcast_mut::<i64>() {
                    *x *= 2;
                }
            },
        )),
    );

    let result = engine.submit(&program, vec![1, 2, 3, 4]).get().unwrap();
    println!("result (doubled by the transforming listener): {result}");
    assert_eq!(result, 20);
    engine.shutdown();
}
