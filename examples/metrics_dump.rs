//! Observe a full run: one hub, three exporters.
//!
//! Enables the engine's [`MetricsHub`], serves a burst of multi-tenant
//! traffic (one tenant adaptive, so the trigger engine contributes rule
//! and forecast metrics), and then exports everything the stack
//! recorded:
//!
//! * **Prometheus text** to stdout — pool scheduling counters, engine
//!   span histograms, serve admission outcomes, and per-tenant sojourn
//!   quantiles, ready for a scrape endpoint.
//! * A **Chrome trace** to `target/metrics_dump.trace.json` — the
//!   pool's active-task timeline plus the adapt layer's decisions as
//!   instant events. Open it at `chrome://tracing` or
//!   <https://ui.perfetto.dev>.
//!
//! Run with: `cargo run --example metrics_dump`

use autonomic_skeletons::adapt::decision_log_to_chrome;
use autonomic_skeletons::pool::telemetry_to_chrome;
use autonomic_skeletons::prelude::*;

/// The tenant program: square every element in parallel, then sum.
fn program() -> Skel<Vec<i64>, i64> {
    map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0] * v[0]),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    )
}

fn main() {
    let engine = Engine::new(4);
    // One switch turns on recording across pool, engine, serve and
    // adapt — everything shares this hub.
    engine.metrics_hub().set_enabled(true);

    let mut registry: ServeRegistry<Vec<i64>, i64> = ServeRegistry::new(&engine)
        .with_policy(AdmissionPolicy::default().max_in_flight(4).max_backlog(64));

    // Three plain tenants plus one adaptive tenant whose trigger engine
    // observes the run and logs decisions.
    let tenants: Vec<TenantId> = (0..3).map(|_| registry.register(&program())).collect();
    let trigger = TriggerEngine::new(0.5);
    let adaptive = registry.register_adaptive(&program(), trigger.clone());

    for round in 0..8 {
        for &t in &tenants {
            registry.feed(t, (0..=round as i64).collect());
        }
        registry.feed(adaptive, (0..=round as i64 + 2).collect());
    }
    registry.quiesce();
    registry.drain_cycle();
    let served: usize = tenants
        .iter()
        .chain(std::iter::once(&adaptive))
        .map(|&t| registry.take_ready(t).len())
        .sum();
    assert_eq!(served, 32, "every admitted item completed");

    // --- Exporter 1: Prometheus text ---------------------------------
    // `export_snapshot` is the hub snapshot plus the registry's
    // per-tenant sojourn series.
    let snap = registry.export_snapshot();
    println!("{}", snap.to_prometheus());

    // --- Exporter 2: Chrome trace timeline ---------------------------
    let mut trace = ChromeTrace::new();
    telemetry_to_chrome(&engine.pool().telemetry().samples(), &mut trace);
    decision_log_to_chrome(&trigger.decision_log(), &mut trace);
    let path = "target/metrics_dump.trace.json";
    trace.save(path).expect("trace written");
    println!(
        "# chrome trace: {} events -> {path} (load in chrome://tracing)",
        trace.len(),
    );
    engine.shutdown();
}
