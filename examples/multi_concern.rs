//! Multi-concern arbitration: a **cost guard vetoes a performance grow**.
//!
//! A width-retune rule (concern: performance) wants to widen a map's
//! chunk knob to match the pool, while a `CostGuard` (concern: cost)
//! watches a `NodeHoursMeter` against a node-time budget. The stream
//! plays three acts, all decided by the arbitration layer at safe
//! points:
//!
//! 1. **under budget** — the guard is silent and the grow applies
//!    (width 2 → 8);
//! 2. **budget crossed** — the guard fires a real shrink back to the
//!    economy width (8 → 2);
//! 3. **held down** — every further grow attempt meets the guard's
//!    veto; under [`ConflictPolicy::Veto`] the contested knob does not
//!    move, and each blocked fire lands in the decision log as a
//!    `suppressed by \`cost-guard\`` record.
//!
//! Run with: `cargo run --example multi_concern`

use autonomic_skeletons::prelude::*;

fn main() {
    let width = Knob::new("width", 2);
    let w = width.clone();
    let program: Skel<Vec<i64>, i64> = map(
        move |v: Vec<i64>| {
            let chunks = w.get().max(1);
            let per = v.len().div_ceil(chunks).max(1);
            v.chunks(per).map(|c| c.to_vec()).collect::<Vec<_>>()
        },
        seq(|v: Vec<i64>| v.into_iter().sum::<i64>()),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );

    // 30 seconds of node time to spend; the virtual cluster burns four
    // slot-seconds per item below, so the budget dies around item 8.
    let meter = NodeHoursMeter::new();
    let budget = TimeNs::from_secs(30);
    let trigger = TriggerEngine::new(0.5);
    trigger.add_rule(RetuneWidth::new(width.clone(), 2).named("grow-width"));
    trigger.add_rule(CostGuard::knob(meter.clone(), budget, width.clone(), 2).named("cost-guard"));

    let engine = Engine::new(4);
    let mut stream = AdaptiveSession::new(&engine, &program, trigger.clone())
        .conflict_policy(ConflictPolicy::Veto);

    println!("width knob over a 30 s node-time budget (economy width 2):");
    for k in 0..12u64 {
        // Virtual spend: four enabled slots, one second per item.
        meter.observe(TimeNs::from_secs(k), 4);
        stream.feed((0..64).collect());
        let sum = stream.next_result().expect("lock-step").unwrap();
        println!(
            "  item {k:2}: sum {sum}, width {}, spent {:>3.0} s node-time",
            width.get(),
            meter.node_hours() * 3600.0,
        );
    }

    println!("\ndecision log (suppressions audited, no version bump):");
    for d in trigger.decision_log() {
        println!("  v{} {:<12} {}", d.version, d.rule, d.action);
        println!("       why: {}", d.why);
    }

    assert_eq!(
        width.get(),
        2,
        "the veto held the knob at the economy width"
    );
    assert!(trigger
        .decision_log()
        .iter()
        .any(|d| d.action.contains("suppressed by `cost-guard`")));
    engine.shutdown();
}
