//! Predictive, cluster-aware adaptation end to end: an oscillating load
//! on a skewed two-node cluster.
//!
//! The stream's item sizes flip between a low and a high phase (the
//! adversarial input for knob rules), and the cluster is skewed: a
//! one-slot `edge` node does all the work while a faster four-slot `hub`
//! sits dark. Three autonomic mechanisms fire, all audited:
//!
//! 1. **provisioning** — `ProvisioningPolicy` sees the edge's busy share
//!    cross its high-water mark and brings the hub's slot block online
//!    (announced as an `(After, Reconfigured)` event, applied through the
//!    simulator's LP channel — the paper's "adding workers like adding
//!    threads");
//! 2. **offload** — the `Offload` rule sees the same skew in
//!    `ClusterTelemetry` and re-places the map subtree onto the hub
//!    (`Skel::placed_at`, a deep placement annotation the simulator's
//!    scheduler honours);
//! 3. **grain retune, damped** — the oscillating load swings the leaf
//!    duration EWMA across the `RetuneGrain` band; its `Hysteresis`
//!    (cooldown + dead band) keeps the knob from flapping A→B→A.
//!
//! Run with: `cargo run --example offload_cluster`

use std::sync::Arc;

use autonomic_skeletons::prelude::*;
use autonomic_skeletons::skeletons::KindTag;
use autonomic_skeletons::workloads::{GrainedSquareSum, OscillatingLoad};

fn main() {
    let scenario = GrainedSquareSum::new(32);
    let load = OscillatingLoad::new(4, 160, 3);
    let items = load.inputs(18);

    // Leaf cost ∝ chunk length (1ms/element); everything else 1ms.
    let leaf = MuscleId::new(
        scenario.program.node().children()[0].id,
        MuscleRole::Execute,
    );
    let cost = PerMuscleCost::new(Arc::new(TableCost::new(TimeNs::from_millis(1)))).route(
        leaf,
        Arc::new(
            LinearCost::new(TimeNs::ZERO, TimeNs::from_millis(1))
                .with_probe(|p| p.downcast_ref::<Vec<i64>>().map(Vec::len)),
        ),
    );

    // The skewed cluster: 1 edge slot online, a faster 4-slot hub dark.
    let cluster = Cluster::new(vec![
        NodeSpec::local("edge", 1),
        NodeSpec::remote("hub", 4, TimeNs::from_millis(2)).with_speed(2.0),
    ])
    .with_capacity(1);
    let telemetry = cluster.telemetry();
    let mut sim = SimEngine::with_workers(Box::new(cluster), Arc::new(cost));

    // Self-configuration: grain retune (damped) + offload.
    let trigger = TriggerEngine::new(0.5);
    sim.registry().add_listener(trigger.clone());
    trigger.add_rule(
        RetuneGrain::new(
            Knob::from_shared("grain", Arc::clone(&scenario.grain)),
            leaf,
            TimeNs::from_millis(10),
        )
        .bounds(4, 256)
        .hysteresis(Hysteresis::new(4, 0.2)),
    );
    trigger
        .add_rule(Offload::new(&scenario.program, "hub", telemetry.clone()).water_marks(0.7, 0.2));
    let lp_view = telemetry.clone();
    let reconf = Reconfigurator::new(
        Arc::clone(sim.registry()),
        sim.clock().clone(),
        trigger.clone(),
    )
    .lp_source(move || lp_view.capacity().max(1));

    // Dynamic node provisioning from the same telemetry.
    let mut policy = ProvisioningPolicy::new(0.8, 0.0).cooldown(3).announce_via(
        Arc::clone(sim.registry()),
        scenario.program.id(),
        KindTag::Map,
    );

    let mut vskel = VersionedSkel::new(&scenario.program);
    let clock = sim.clock().clone();
    println!(
        "feeding {} oscillating items through the cluster:",
        items.len()
    );
    for (k, input) in items.iter().enumerate() {
        let out = sim.run(vskel.skel(), input.clone()).expect("sim run");
        assert_eq!(
            out.result,
            GrainedSquareSum::reference(input),
            "item {k} diverged from the sequential reference"
        );
        trigger.record_outcome(true);
        if let Some(capacity) = policy.review(&telemetry, clock.now()) {
            sim.set_lp(capacity);
        }
        reconf.apply(&mut vskel);
    }

    println!("provisioning log:");
    for r in policy.log() {
        println!(
            "  t={:>6.3}s  {:?} `{}` -> capacity {} — {}",
            r.at.as_secs_f64(),
            r.action,
            r.node,
            r.capacity,
            r.why
        );
    }
    println!("adaptation decision log:");
    for d in trigger.decision_log() {
        println!(
            "  t={:>6.3}s  v{} by `{}`: {} — {}",
            d.at.as_secs_f64(),
            d.version,
            d.rule,
            d.action,
            d.why
        );
    }
    let busy = telemetry.busy_per_node();
    for (name, busy) in telemetry.names().iter().zip(&busy) {
        println!("  {name:<6} {:.3}s busy", busy.as_secs_f64());
    }

    let log = trigger.decision_log();
    let offloads = log.iter().filter(|d| d.rule == "offload").count();
    assert_eq!(offloads, 1, "exactly one audited offload: {log:?}");
    assert!(
        policy
            .log()
            .iter()
            .any(|r| r.action == ProvisionAction::Add && r.node == "hub"),
        "provisioning brought the hub online"
    );
    assert!(busy[1] > TimeNs::ZERO, "offloaded work ran on the hub");
    assert!(
        log.iter().any(|d| d.rule == "grain-retune"),
        "the grain knob moved at least once"
    );
    println!("offloaded, provisioned, damped — results identical to the reference");
}
