//! Staged computation: `pipe(seq(parse), seq(aggregate))` with several
//! inputs in flight — stages of different inputs overlap on the pool,
//! which is where `pipe`'s parallelism comes from.
//!
//! Run with: `cargo run --example pipeline_stats`

use autonomic_skeletons::prelude::*;
use autonomic_skeletons::workloads::numeric::{stats_pipeline, Stats};

fn main() {
    let pipeline: Skel<Vec<String>, Stats> = stats_pipeline();
    let engine = Engine::new(2);
    engine.metrics_hub().set_enabled(true);

    // Ten batches of "sensor readings" streamed through the pipeline with
    // at most four in flight; stages of different batches interleave on
    // the pool, and results come back in submission order.
    let mut stream = StreamSession::new(&engine, &pipeline).max_in_flight(4);
    for batch in 0..10 {
        let lines: Vec<String> = (0..1000)
            .map(|i| format!("sensor_{}={}.{}", i % 7, (batch * 37 + i) % 100, i % 10))
            .collect();
        stream.feed(lines);
    }
    for (batch, result) in stream.drain().enumerate() {
        let stats = result.expect("pipeline failed");
        println!(
            "batch {batch}: n={} sum={:.1} min={:.1} max={:.1}",
            stats.count, stats.sum, stats.min, stats.max
        );
        assert_eq!(stats.count, 1000);
    }

    // Everything above was also measured: the engine stamped a span per
    // submission and the pool counted its scheduling traffic, all into
    // the hub one `snapshot()` reads back.
    let snap = engine.metrics_hub().snapshot();
    let span = snap.histogram("engine_span_ns").expect("spans recorded");
    println!(
        "engine: {} submissions, span p50 {:.1}us p99 {:.1}us",
        snap.counter("engine_submissions_total").unwrap_or(0),
        span.percentile(0.50) as f64 / 1_000.0,
        span.percentile(0.99) as f64 / 1_000.0,
    );
    println!(
        "pool: {} wakes, {} steals, {} parks",
        snap.counter("pool_wakes_total").unwrap_or(0),
        snap.counter("pool_steals_total").unwrap_or(0),
        snap.counter("pool_parks_total").unwrap_or(0),
    );
    engine.shutdown();
}
