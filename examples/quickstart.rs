//! Quickstart: the paper's Listing 1 in Rust — a nested map
//! (`map(fs, map(fs, seq(fe), fm), fm)`) counting hashtags and mentioned
//! users, submitted to the threaded engine through a future.
//!
//! Run with: `cargo run --example quickstart`

use autonomic_skeletons::prelude::*;
use autonomic_skeletons::workloads::tweets::{generate_corpus, TweetGenConfig};
use autonomic_skeletons::workloads::wordcount::{count_tokens, merge_counts, Counts};

fn main() {
    // Muscle definitions (the paper's fs / fe / fm).
    let inner_split = |chunk: Vec<String>| -> Vec<Vec<String>> {
        chunk.chunks(250).map(|c| c.to_vec()).collect()
    };
    let outer_split = |corpus: Vec<String>| -> Vec<Vec<String>> {
        corpus.chunks(1000).map(|c| c.to_vec()).collect()
    };
    let fe = |lines: Vec<String>| -> Counts { count_tokens(&lines) };

    // Skeleton definition: two nested maps.
    let nested: Skel<Vec<String>, Counts> = map(inner_split, seq(fe), merge_counts);
    let program: Skel<Vec<String>, Counts> = map(outer_split, nested, merge_counts);

    // Input: a synthetic tweet corpus (substitute for the paper's 1.2M
    // Colombian tweets; see DESIGN.md).
    let corpus = generate_corpus(&TweetGenConfig::with_tweets(10_000));
    println!("counting tokens in {} tweets…", corpus.len());

    // Input parameter → future → result (Listing 1's flow).
    let engine = Engine::new(4);
    let future = engine.submit(&program, corpus);
    // … do something else …
    let counts = future.get().expect("skeleton failed");

    let mut top: Vec<(&String, &u64)> = counts.iter().collect();
    top.sort_by_key(|(token, n)| (std::cmp::Reverse(**n), (*token).clone()));
    println!("distinct tokens: {}", counts.len());
    println!("top 5:");
    for (token, n) in top.iter().take(5) {
        println!("  {token:<14} {n}");
    }
    engine.shutdown();
}
