//! Multi-tenant serving: many sessions, one pool, one autonomic loop.
//!
//! A [`ServeRegistry`] shards per-tenant adaptive sessions over a single
//! shared engine. This example walks the three serve-layer mechanisms:
//!
//! 1. **Admission and fairness** — tenants feed through per-tenant
//!    in-flight quotas; items beyond the quota queue in a backlog that a
//!    round-robin drain cycle dispatches starvation-free.
//! 2. **Batched ingestion** — `feed_batch` hands a whole chunk to the
//!    engine in one pool transaction (and one safe point), instead of
//!    paying the submit→future floor per item.
//! 3. **Cross-tenant warm-start** — tenant A's estimator history is
//!    published to a structure-keyed shared pool; tenant B, running a
//!    structurally identical program, warm-starts from it, so B's
//!    forecast gate (`predictive_wct`) is open from its very first safe
//!    point instead of after its own warm-up.
//! 4. **Sharded ingress** — `ShardedServe` splits the tenant population
//!    over N registry shards (pure hash of the tenant id), each drained
//!    by its own driver thread, all over the same shared engine: feeds
//!    lock only the owning shard, and backlogs dispatch in the
//!    background without any explicit `drain_cycle` calls.
//!
//! Run with: `cargo run --example serve_multi_tenant`

use autonomic_skeletons::core::predictive_wct;
use autonomic_skeletons::prelude::*;

/// The tenant program: square every element in parallel, then sum.
fn program() -> Skel<Vec<i64>, i64> {
    map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0] * v[0]),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    )
}

fn reference(v: &[i64]) -> i64 {
    v.iter().map(|x| x * x).sum()
}

fn main() {
    let engine = Engine::new(4);
    let policy = AdmissionPolicy::default().max_in_flight(8).max_backlog(64);
    let mut registry: ServeRegistry<Vec<i64>, i64> =
        ServeRegistry::new(&engine).with_policy(policy);

    // --- 1. Bulk tenants over one pool, with admission control --------
    let tenants: Vec<TenantId> = (0..6).map(|_| registry.register(&program())).collect();
    let mut queued = 0;
    for round in 0..4 {
        for (i, &t) in tenants.iter().enumerate() {
            let item: Vec<i64> = (0..=(round + i) as i64).collect();
            match registry.feed(t, item) {
                Admission::Submitted => {}
                Admission::Queued => queued += 1,
                Admission::Rejected(reason) => panic!("unexpected rejection: {reason:?}"),
            }
        }
    }
    registry.quiesce();
    for (i, &t) in tenants.iter().enumerate() {
        let results = registry.take_ready(t);
        assert_eq!(results.len(), 4, "{t}: every admitted item completed");
        for (round, r) in results.into_iter().enumerate() {
            let item: Vec<i64> = (0..=(round + i) as i64).collect();
            assert_eq!(
                r.unwrap(),
                reference(&item),
                "{t} diverged on round {round}"
            );
        }
    }
    println!(
        "{} tenants shared {} workers; {} feeds rode the backlog through the round-robin drain",
        tenants.len(),
        engine.pool().target_workers(),
        queued,
    );

    // --- 2. Batched ingestion ----------------------------------------
    let bulk = registry.register(&program());
    let batch: Vec<Vec<i64>> = (0..32).map(|n| vec![n, n + 1]).collect();
    let outcome = registry.feed_batch(bulk, batch.clone());
    println!(
        "feed_batch({} items): {} submitted in one transaction, {} queued for the drain cycle",
        batch.len(),
        outcome.submitted,
        outcome.queued,
    );
    registry.quiesce();
    let results = registry.take_ready(bulk);
    assert_eq!(results.len(), batch.len());
    for (item, r) in batch.iter().zip(results) {
        assert_eq!(r.unwrap(), reference(item));
    }

    // --- 3. Cross-tenant estimator warm-start ------------------------
    // Tenant A is adaptive: its trigger engine receives the engine's
    // events (routed by the multiplexed monitor) and builds estimator
    // history as its traffic flows.
    let trig_a = TriggerEngine::new(0.5);
    let a = registry.register_adaptive(&program(), trig_a.clone());
    for n in 0..12 {
        registry.feed(a, (0..=n).collect());
    }
    registry.quiesce();
    registry.drain_cycle(); // publishes A's history to the shared pool
    let lp = engine.pool().target_workers();
    assert!(
        registry.shared_estimators().structures() >= 1,
        "A's history reached the shared pool"
    );

    // Tenant B runs a *structurally identical* program — independently
    // constructed, so it shares no NodeIds with A. Registration warms its
    // trigger from the shared pool: the forecast gate is open before B
    // has run a single item.
    let trig_b = TriggerEngine::new(0.5);
    let b_program = program();
    let b = registry.register_adaptive(&b_program, trig_b.clone());
    let warmed = trig_b.read_estimates(|est| predictive_wct(est, b_program.node(), lp));
    let forecast = warmed.expect("warm-started tenant forecasts before its first item");
    println!(
        "tenant {b} warm-started from tenant {a}'s history: first forecast {} ns at lp {lp}",
        forecast.0,
    );
    registry.feed_batch(b, (0..8).map(|n| vec![n, n + 2]).collect());
    registry.quiesce();
    assert_eq!(registry.take_ready(b).len(), 8);

    let stats = registry.stats(a).unwrap();
    println!(
        "tenant {a} stats: submitted {} completed {} rejected {}",
        stats.submitted, stats.completed, stats.rejected,
    );

    // --- 4. Sharded multi-threaded ingress ---------------------------
    // The same engine now also carries a ShardedServe: tenants hash onto
    // 4 registry shards, each with its own driver thread. Feeds from
    // concurrent ingress threads lock only the owning shard, and the
    // drivers dispatch every backlog in the background.
    let serve: ShardedServe<Vec<i64>, i64> =
        ShardedServe::new(&engine, 4, AdmissionPolicy::default().max_in_flight(4));
    let shard_tenants: Vec<TenantId> = (0..8).map(|_| serve.register(&program())).collect();
    std::thread::scope(|s| {
        for lane in 0..2 {
            let serve = &serve;
            let shard_tenants = &shard_tenants;
            s.spawn(move || {
                for &t in shard_tenants.iter().skip(lane).step_by(2) {
                    serve.feed_batch(t, (0..16).map(|n| vec![n, n + 1]).collect());
                }
            });
        }
    });
    serve.quiesce();
    for &t in &shard_tenants {
        let results = serve.take_ready(t);
        assert_eq!(results.len(), 16, "{t}: every item completed");
        for (n, r) in results.into_iter().enumerate() {
            let n = n as i64;
            assert_eq!(r.unwrap(), reference(&[n, n + 1]));
        }
    }
    println!(
        "{} tenants over {} shard drivers: 2 ingress threads fed {} items, \
         the drivers drained them all",
        shard_tenants.len(),
        serve.shards(),
        shard_tenants.len() * 16,
    );
    serve.join();

    engine.shutdown();
    println!("all tenants served correct results over one shared pool");
}
