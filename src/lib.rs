//! # autonomic-skeletons
//!
//! Self-configuring and self-optimizing algorithmic skeletons driven by
//! events — a Rust reproduction of Pabón & Henrio, *Self-Configuration and
//! Self-Optimization Autonomic Skeletons using Events* (PMAM 2014), built
//! on a from-scratch Skandium-style skeleton runtime.
//!
//! ## The stack
//!
//! | layer | crate | what it does |
//! |-------|-------|--------------|
//! | skeleton language | [`skeletons`] | typed, nestable `seq`/`farm`/`pipe`/`while`/`if`/`for`/`map`/`fork`/`d&C` with Execute/Split/Merge/Condition muscles |
//! | events | [`events`] | statically-defined events around every muscle, delivered on the muscle's thread; listeners may transform partial solutions |
//! | pool | [`pool`] | a worker pool whose size (the Level of Parallelism, LP) changes while work runs |
//! | threaded engine | [`engine`] | continuation-passing interpreter over the pool |
//! | simulator | [`sim`] | the same interpreter over a discrete-event scheduler in virtual time, with pluggable cost models and ordering policies (deterministic replay, or seeded-ordering fuzzing) |
//! | autonomic layer | [`core`] | EWMA estimators, event state machines, Activity Dependency Graphs, best-effort/limited-LP strategies, and the WCT/LP controller |
//! | self-configuration | [`adapt`] | structural rewrite rules (promotion, fallback-swap, width/grain retuning, offload, cost guard) arbitrated across concerns and applied at stream safe points, with `Reconfigured` events and a decision log |
//! | serving | [`serve`] | multi-tenant session registry over one shared pool: admission control, batched ingestion, and a multiplexed autonomic loop with structure-keyed estimator sharing |
//! | observability | [`obs`] | one metrics hub across the stack: counters, gauges, log-bucketed histograms, Prometheus/JSON exporters, and a `chrome://tracing` timeline writer |
//! | workloads | [`workloads`] | synthetic tweet corpus, word count, numeric kernels |
//!
//! ## Quickstart
//!
//! ```
//! use autonomic_skeletons::prelude::*;
//!
//! // map(fs, seq(fe), fm): square in parallel, then sum.
//! let program: Skel<Vec<i64>, i64> = map(
//!     |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
//!     seq(|v: Vec<i64>| v[0] * v[0]),
//!     |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
//! );
//! let engine = Engine::new(2);
//! let future = engine.submit(&program, vec![1, 2, 3, 4]);
//! assert_eq!(future.get().unwrap(), 30);
//! ```
//!
//! ## Autonomic execution
//!
//! [`AutonomicEngine`] (real threads) and [`AutonomicSim`] (virtual time)
//! wire a skeleton, an engine and an [`core::AutonomicController`]
//! together: give them a Wall-Clock-Time goal and a thread cap, and the
//! controller monitors execution through events, estimates the remaining
//! time with Activity Dependency Graphs, and resizes the LP to meet the
//! goal — while the skeleton runs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use askel_adapt as adapt;
pub use askel_core as core;
pub use askel_dist as dist;
pub use askel_engine as engine;
pub use askel_events as events;
pub use askel_obs as obs;
pub use askel_pool as pool;
pub use askel_serve as serve;
pub use askel_sim as sim;
pub use askel_skeletons as skeletons;
pub use askel_workloads as workloads;

use std::sync::Arc;

use askel_core::{AutonomicController, ControllerConfig, FnActuator, Snapshot};
use askel_engine::{Engine, SkelFuture};
use askel_sim::cost::CostModel;
use askel_sim::{SimEngine, SimError, SimOutcome};
use askel_skeletons::Skel;

/// The items almost every user wants in scope.
pub mod prelude {
    pub use askel_adapt::{
        AdaptRecord, AdaptiveSession, AdaptiveSimSession, Concern, ConflictPolicy, CostGuard,
        FallbackSwap, Forecast, Hysteresis, Knob, Offload, Promote, Reconfigurator, RetuneGrain,
        RetuneWidth, Trigger, TriggerEngine, VersionedSkel,
    };
    pub use askel_core::{
        AutonomicController, ControllerConfig, DecisionReason, DecreasePolicy, RaisePolicy,
        Snapshot,
    };
    pub use askel_dist::{
        Cluster, ClusterTelemetry, NodeHoursMeter, NodeSpec, ProvisionAction, ProvisionRecord,
        ProvisioningPolicy, ProvisioningReview,
    };
    pub use askel_engine::{Engine, EngineError, SkelFuture, StreamSession};
    pub use askel_events::{EventFilter, FnListener, Listener, Payload, When, Where};
    pub use askel_obs::{ChromeTrace, HistogramSnapshot, MetricsHub, MetricsSnapshot};
    pub use askel_serve::{
        Admission, AdmissionPolicy, BatchAdmission, RejectReason, ServeRegistry, ShardedServe,
        SharedEstimators, TenantId, TenantStats,
    };
    pub use askel_sim::components::{Command, Component};
    pub use askel_sim::cost::{JitterCost, LinearCost, PerMuscleCost, TableCost, ZeroCost};
    pub use askel_sim::{OrderingPolicy, SimEngine, SimOutcome, StreamReport};
    pub use askel_skeletons::{
        dac, farm, fork, map, pipe, seq, sfor, sif, swhile, Clock, MuscleId, MuscleRole, Skel,
        TimeNs,
    };

    pub use crate::{AutonomicEngine, AutonomicSim};
}

/// A threaded engine with an autonomic controller attached to one skeleton.
///
/// The controller observes the skeleton's events, and grows/shrinks the
/// engine's worker pool to meet the configured WCT goal.
pub struct AutonomicEngine<P, R> {
    engine: Engine,
    controller: Arc<AutonomicController>,
    skel: Skel<P, R>,
}

impl<P, R> AutonomicEngine<P, R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    /// Wires `skel`, a fresh engine (at `config.initial_lp` workers) and a
    /// controller together.
    pub fn new(skel: Skel<P, R>, config: ControllerConfig) -> Self {
        let engine = Engine::new(config.initial_lp);
        let pool = engine.pool().clone();
        let controller = AutonomicController::new(
            skel.node().clone(),
            config,
            Arc::new(FnActuator(move |lp| pool.set_target_workers(lp))),
        );
        engine.registry().add_listener(controller.clone());
        AutonomicEngine {
            engine,
            controller,
            skel,
        }
    }

    /// Initializes the estimators from a previous run's snapshot (the
    /// paper's "with initialization" scenario).
    pub fn init_estimates(&self, snapshot: &Snapshot) {
        self.controller.init_estimates(snapshot);
    }

    /// Submits one input; the controller supervises the run.
    pub fn submit(&self, input: P) -> SkelFuture<R> {
        self.engine.submit(&self.skel, input)
    }

    /// The underlying engine (registry, pool, telemetry).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The controller (decision log, estimates, snapshots).
    pub fn controller(&self) -> &Arc<AutonomicController> {
        &self.controller
    }

    /// The supervised skeleton.
    pub fn skeleton(&self) -> &Skel<P, R> {
        &self.skel
    }

    /// Shuts the engine down.
    pub fn shutdown(&self) {
        self.engine.shutdown();
    }
}

/// A simulated engine with an autonomic controller attached to one
/// skeleton — the deterministic twin of [`AutonomicEngine`].
pub struct AutonomicSim<P, R> {
    sim: SimEngine,
    controller: Arc<AutonomicController>,
    skel: Skel<P, R>,
}

impl<P, R> AutonomicSim<P, R>
where
    P: Send + 'static,
    R: Send + 'static,
{
    /// Wires `skel`, a simulator (at `config.initial_lp` workers, costs
    /// from `cost`) and a controller together.
    pub fn new(skel: Skel<P, R>, config: ControllerConfig, cost: Arc<dyn CostModel>) -> Self {
        let sim = SimEngine::new(config.initial_lp, cost);
        let lp = sim.lp_control();
        let controller = AutonomicController::new(
            skel.node().clone(),
            config,
            Arc::new(FnActuator(move |n| lp.request(n))),
        );
        sim.registry().add_listener(controller.clone());
        AutonomicSim {
            sim,
            controller,
            skel,
        }
    }

    /// Initializes the estimators from a previous run's snapshot.
    pub fn init_estimates(&self, snapshot: &Snapshot) {
        self.controller.init_estimates(snapshot);
    }

    /// Runs one input to completion in virtual time.
    pub fn run(&mut self, input: P) -> Result<SimOutcome<R>, SimError> {
        self.sim.run(&self.skel, input)
    }

    /// The underlying simulator (telemetry, clock).
    pub fn sim(&self) -> &SimEngine {
        &self.sim
    }

    /// The controller (decision log, estimates, snapshots).
    pub fn controller(&self) -> &Arc<AutonomicController> {
        &self.controller
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use askel_skeletons::TimeNs;
    use std::sync::Arc;

    fn fan(n: i64) -> Skel<Vec<i64>, i64> {
        let _ = n;
        map(
            |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
            seq(|v: Vec<i64>| v[0]),
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        )
    }

    #[test]
    fn autonomic_sim_raises_lp_to_meet_goal() {
        let program = fan(8);
        // Every muscle costs 1s; 8 children; sequential = 10s. Goal 5s
        // needs more than one worker. A flat map cannot adapt cold (its
        // merge — the last muscle — is also the last estimate to arrive,
        // exactly the gate the paper describes), so initialize the
        // estimators like the paper's second scenario.
        let cost = Arc::new(TableCost::new(TimeNs::from_secs(1)));
        let config = ControllerConfig::new(TimeNs::from_secs(5), 16).initial_lp(1);
        let muscles = program.node().collect_muscles();
        let mut auto = AutonomicSim::new(program, config, cost);
        auto.controller().with_estimates(|est| {
            for d in &muscles {
                est.init_duration(d.id, TimeNs::from_secs(1));
                if d.id.role == MuscleRole::Split {
                    est.init_cardinality(d.id, 8.0);
                }
            }
        });
        let out = auto.run((1..=8).collect()).unwrap();
        assert_eq!(out.result, 36);
        assert!(
            out.wct <= TimeNs::from_secs(6),
            "adapted run must land near its goal; wct {}",
            out.wct
        );
        let decisions = auto.controller().decisions();
        let peak = decisions.iter().map(|d| d.to_lp).max().unwrap_or(1);
        assert!(
            peak > 1,
            "controller must have raised the LP: {decisions:?}"
        );
    }

    #[test]
    fn autonomic_engine_runs_and_reports() {
        let program = fan(4);
        let config = ControllerConfig::new(TimeNs::from_secs(10), 4).initial_lp(2);
        let auto = AutonomicEngine::new(program, config);
        let got = auto.submit(vec![1, 2, 3, 4]).get().unwrap();
        assert_eq!(got, 10);
        auto.shutdown();
    }
}
