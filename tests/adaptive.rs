//! End-to-end self-configuration: the adaptive word count reshapes itself
//! mid-stream (promotion, width retune, fallback-swap), every rewrite is
//! announced through `Reconfigured` events and audited in the decision
//! log, results match the unadapted reference — and on the simulator the
//! whole decision sequence replays deterministically, virtual timestamps
//! included.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use autonomic_skeletons::adapt::Reconfigurator;
use autonomic_skeletons::prelude::*;
use autonomic_skeletons::skeletons::MuscleId;
use autonomic_skeletons::workloads::adaptive::{AdaptiveWordCount, POISON};
use autonomic_skeletons::workloads::{generate_corpus, TweetGenConfig};

fn corpus(tweets: usize) -> Vec<String> {
    generate_corpus(&TweetGenConfig::with_tweets(tweets))
}

fn poisoned(tweets: usize) -> Vec<String> {
    let mut c = corpus(tweets);
    c.push(format!("linea rota {POISON} @usuario2"));
    c
}

/// The acceptance scenario: two structural rewrites (a promotion and a
/// fallback-swap) plus a knob retune happen mid-stream on the threaded
/// engine, visible in the emitted `Reconfigured` events and the decision
/// log, with results identical to the unadapted (robust) reference.
#[test]
fn adaptive_wordcount_reshapes_mid_stream() {
    let wc = AdaptiveWordCount::new(4);
    let engine = Engine::new(2);

    // Collect every Reconfigured event.
    let reconfigured = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&reconfigured);
    engine.registry().add_filtered(
        EventFilter::all().wher(Where::Reconfigured),
        Arc::new(FnListener(
            move |_: &mut Payload<'_>, e: &autonomic_skeletons::events::Event| {
                sink.lock().unwrap().push((e.paper_notation(), e.node));
            },
        )),
    );

    let trigger = TriggerEngine::new(0.5);
    engine.registry().add_listener(trigger.clone());
    trigger.add_rule(
        Promote::new(&wc.count, &wc.parallel)
            .named("promote-count")
            .when(Trigger::InputSizeAtLeast(200.0)),
    );
    let par_split = MuscleId::new(wc.parallel.id(), MuscleRole::Split);
    trigger.add_rule(
        RetuneWidth::new(Knob::from_shared("count-width", Arc::clone(&wc.width)), 3)
            .bounds(2, 64)
            .when(Trigger::CardinalityAtLeast(par_split, 1.0)),
    );
    trigger.add_rule(FallbackSwap::new(&wc.filter, &wc.robust, 2).named("swap-filter"));

    let mut stream = AdaptiveSession::new(&engine, &wc.program, trigger.clone())
        .input_size(|c: &Vec<String>| c.len());

    let mut items: Vec<Vec<String>> = Vec::new();
    items.extend((0..3).map(|_| corpus(40)));
    items.extend((0..3).map(|_| corpus(600)));
    items.extend((0..3).map(|_| poisoned(400)));
    items.push(corpus(200));

    let mut results = Vec::new();
    for item in &items {
        stream.feed(item.clone());
        results.push(stream.next_result().expect("lock-step"));
    }
    assert_eq!(stream.version(), 3);
    engine.shutdown();

    // Exactly the two streak items fail; every success equals the
    // unadapted reference result.
    let errors: Vec<usize> = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_err().then_some(i))
        .collect();
    assert_eq!(errors, vec![6, 7], "the first two corrupt items fail");
    for (i, (item, result)) in items.iter().zip(&results).enumerate() {
        if let Ok(counts) = result {
            assert_eq!(counts, &wc.reference(item), "item {i} diverged");
        }
    }

    // The rewrites are visible through both channels.
    let events = reconfigured.lock().unwrap().clone();
    assert_eq!(events.len(), 3, "{events:?}");
    assert!(events[0].0.contains("@rc(i1, v=1)"), "{events:?}");
    assert!(events[2].0.contains("v=3"), "{events:?}");
    let log = trigger.decision_log();
    let rules: Vec<&str> = log.iter().map(|d| d.rule.as_str()).collect();
    assert_eq!(rules, vec!["promote-count", "width-retune", "swap-filter"]);
    assert_eq!(log[0].target, Some(wc.count.id()));
    assert_eq!(log[2].target, Some(wc.filter.id()));
    assert_eq!(wc.width.load(Ordering::SeqCst), 6, "lp 2 × 3 per worker");
    assert!(log.iter().all(|d| !d.why.is_empty()));
}

/// The same loop driven by the `Reconfigurator` over the discrete-event
/// simulator: rewrite decisions (virtual timestamps included) replay
/// identically across runs.
#[test]
fn sim_rewrite_decisions_are_deterministic() {
    fn run_once() -> (Vec<(TimeNs, u64, String)>, Vec<i64>) {
        let v1: Skel<Vec<i64>, i64> = map(
            |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
            seq(|v: Vec<i64>| v[0]),
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        );
        let v2: Skel<Vec<i64>, i64> = map(
            |v: Vec<i64>| vec![v],
            seq(|v: Vec<i64>| v.into_iter().sum::<i64>()),
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        );
        // Every muscle costs 1s of virtual time.
        let cost = Arc::new(TableCost::new(TimeNs::from_secs(1)));
        let mut sim = SimEngine::new(2, cost);
        let trigger = TriggerEngine::new(0.5);
        sim.registry().add_listener(trigger.clone());
        let fe = MuscleId::new(v1.node().children()[0].id, MuscleRole::Execute);
        trigger.add_rule(
            Promote::new(&v1, &v2)
                .named("collapse-fan")
                .when(Trigger::DurationAtLeast(fe, TimeNs::from_millis(500))),
        );
        let reconf = Reconfigurator::new(
            Arc::clone(sim.registry()),
            sim.clock().clone(),
            trigger.clone(),
        )
        .lp_source(|| 2);
        let mut vskel = VersionedSkel::new(&v1);
        let mut outputs = Vec::new();
        for round in 0..4 {
            let input: Vec<i64> = (0..=round as i64).collect();
            let out = sim.run(vskel.skel(), input).expect("sim run");
            trigger.record_outcome(true);
            outputs.push(out.result);
            reconf.apply(&mut vskel);
        }
        assert_eq!(vskel.version(), 1, "the promotion fired exactly once");
        let log: Vec<(TimeNs, u64, String)> = trigger
            .decision_log()
            .into_iter()
            .map(|d| (d.at, d.version, d.rule))
            .collect();
        (log, outputs)
    }

    let (log_a, out_a) = run_once();
    let (log_b, out_b) = run_once();
    assert_eq!(out_a, out_b);
    assert_eq!(out_a, vec![0, 1, 3, 6]);
    assert_eq!(log_a.len(), 1);
    assert_eq!(
        log_a, log_b,
        "decision log (virtual timestamps included) must replay identically"
    );
}

/// Sharing the estimator view: the self-configuration layer can seed its
/// trigger statistics from the self-optimization controller's live table.
#[test]
fn trigger_seeds_from_controller_estimates() {
    use autonomic_skeletons::core::{AutonomicController, ControllerConfig, FnActuator};

    let program: Skel<i64, i64> = seq(|x: i64| x + 1);
    let fe = MuscleId::new(program.id(), MuscleRole::Execute);
    let controller = AutonomicController::new(
        program.node().clone(),
        ControllerConfig::new(TimeNs::from_secs(1), 4),
        Arc::new(FnActuator(|_| {})),
    );
    controller.with_estimates(|est| est.init_duration(fe, TimeNs::from_millis(7)));

    let trigger = TriggerEngine::new(0.5);
    assert_eq!(trigger.read_estimates(|t| t.duration(fe)), None);
    trigger.seed_from(&controller);
    assert_eq!(
        trigger.read_estimates(|t| t.duration(fe)),
        Some(TimeNs::from_millis(7)),
        "trigger adopted the controller's live estimates"
    );
}

/// The engine-facing suppressed-panic noise check: a fragile muscle panic
/// inside a stream never tears the session, and the error streak is what
/// drives the swap (already covered above); here we pin the version
/// counter's visibility through the facade prelude.
#[test]
fn facade_exports_adaptive_surface() {
    let engine = Engine::new(1);
    let program: Skel<i64, i64> = seq(|x: i64| x * 2);
    let trigger = TriggerEngine::new(0.5);
    let mut stream = AdaptiveSession::new(&engine, &program, trigger);
    stream.feed(21);
    let out: Vec<i64> = stream.drain().map(|r| r.unwrap()).collect();
    assert_eq!(out, vec![42]);
    engine.shutdown();
    // Re-exported rule/record types are nameable through the prelude.
    let _ = |r: AdaptRecord| r.version;
    let _ = |v: VersionedSkel<i64, i64>| v.version();
    let _ = Reconfigurator::new;
    let _ = RetuneGrain::new;
}
