//! End-to-end self-configuration: the adaptive word count reshapes itself
//! mid-stream (promotion, width retune, fallback-swap), every rewrite is
//! announced through `Reconfigured` events and audited in the decision
//! log, results match the unadapted reference — and on the simulator the
//! whole decision sequence replays deterministically, virtual timestamps
//! included.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use autonomic_skeletons::adapt::Reconfigurator;
use autonomic_skeletons::prelude::*;
use autonomic_skeletons::skeletons::MuscleId;
use autonomic_skeletons::workloads::adaptive::{AdaptiveWordCount, POISON};
use autonomic_skeletons::workloads::{generate_corpus, TweetGenConfig};

fn corpus(tweets: usize) -> Vec<String> {
    generate_corpus(&TweetGenConfig::with_tweets(tweets))
}

fn poisoned(tweets: usize) -> Vec<String> {
    let mut c = corpus(tweets);
    c.push(format!("linea rota {POISON} @usuario2"));
    c
}

/// The acceptance scenario: two structural rewrites (a promotion and a
/// fallback-swap) plus a knob retune happen mid-stream on the threaded
/// engine, visible in the emitted `Reconfigured` events and the decision
/// log, with results identical to the unadapted (robust) reference.
#[test]
fn adaptive_wordcount_reshapes_mid_stream() {
    let wc = AdaptiveWordCount::new(4);
    let engine = Engine::new(2);

    // Collect every Reconfigured event.
    let reconfigured = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&reconfigured);
    engine.registry().add_filtered(
        EventFilter::all().wher(Where::Reconfigured),
        Arc::new(FnListener(
            move |_: &mut Payload<'_>, e: &autonomic_skeletons::events::Event| {
                sink.lock().unwrap().push((e.paper_notation(), e.node));
            },
        )),
    );

    let trigger = TriggerEngine::new(0.5);
    engine.registry().add_listener(trigger.clone());
    trigger.add_rule(
        Promote::new(&wc.count, &wc.parallel)
            .named("promote-count")
            .when(Trigger::InputSizeAtLeast(200.0)),
    );
    let par_split = MuscleId::new(wc.parallel.id(), MuscleRole::Split);
    trigger.add_rule(
        RetuneWidth::new(Knob::from_shared("count-width", Arc::clone(&wc.width)), 3)
            .bounds(2, 64)
            .when(Trigger::CardinalityAtLeast(par_split, 1.0)),
    );
    trigger.add_rule(FallbackSwap::new(&wc.filter, &wc.robust, 2).named("swap-filter"));

    let mut stream = AdaptiveSession::new(&engine, &wc.program, trigger.clone())
        .input_size(|c: &Vec<String>| c.len());

    let mut items: Vec<Vec<String>> = Vec::new();
    items.extend((0..3).map(|_| corpus(40)));
    items.extend((0..3).map(|_| corpus(600)));
    items.extend((0..3).map(|_| poisoned(400)));
    items.push(corpus(200));

    let mut results = Vec::new();
    for item in &items {
        stream.feed(item.clone());
        results.push(stream.next_result().expect("lock-step"));
    }
    assert_eq!(stream.version(), 3);
    engine.shutdown();

    // Exactly the two streak items fail; every success equals the
    // unadapted reference result.
    let errors: Vec<usize> = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_err().then_some(i))
        .collect();
    assert_eq!(errors, vec![6, 7], "the first two corrupt items fail");
    for (i, (item, result)) in items.iter().zip(&results).enumerate() {
        if let Ok(counts) = result {
            assert_eq!(counts, &wc.reference(item), "item {i} diverged");
        }
    }

    // The rewrites are visible through both channels.
    let events = reconfigured.lock().unwrap().clone();
    assert_eq!(events.len(), 3, "{events:?}");
    assert!(events[0].0.contains("@rc(i1, v=1)"), "{events:?}");
    assert!(events[2].0.contains("v=3"), "{events:?}");
    let log = trigger.decision_log();
    let rules: Vec<&str> = log.iter().map(|d| d.rule.as_str()).collect();
    assert_eq!(rules, vec!["promote-count", "width-retune", "swap-filter"]);
    assert_eq!(log[0].target, Some(wc.count.id()));
    assert_eq!(log[2].target, Some(wc.filter.id()));
    assert_eq!(wc.width.load(Ordering::SeqCst), 6, "lp 2 × 3 per worker");
    assert!(log.iter().all(|d| !d.why.is_empty()));
}

/// The same loop driven by the `Reconfigurator` over the discrete-event
/// simulator: rewrite decisions (virtual timestamps included) replay
/// identically across runs.
#[test]
fn sim_rewrite_decisions_are_deterministic() {
    fn run_once() -> (Vec<(TimeNs, u64, String)>, Vec<i64>) {
        let v1: Skel<Vec<i64>, i64> = map(
            |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
            seq(|v: Vec<i64>| v[0]),
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        );
        let v2: Skel<Vec<i64>, i64> = map(
            |v: Vec<i64>| vec![v],
            seq(|v: Vec<i64>| v.into_iter().sum::<i64>()),
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        );
        // Every muscle costs 1s of virtual time.
        let cost = Arc::new(TableCost::new(TimeNs::from_secs(1)));
        let mut sim = SimEngine::new(2, cost);
        let trigger = TriggerEngine::new(0.5);
        sim.registry().add_listener(trigger.clone());
        let fe = MuscleId::new(v1.node().children()[0].id, MuscleRole::Execute);
        trigger.add_rule(
            Promote::new(&v1, &v2)
                .named("collapse-fan")
                .when(Trigger::DurationAtLeast(fe, TimeNs::from_millis(500))),
        );
        let reconf = Reconfigurator::new(
            Arc::clone(sim.registry()),
            sim.clock().clone(),
            trigger.clone(),
        )
        .lp_source(|| 2);
        let mut vskel = VersionedSkel::new(&v1);
        let mut outputs = Vec::new();
        for round in 0..4 {
            let input: Vec<i64> = (0..=round as i64).collect();
            let out = sim.run(vskel.skel(), input).expect("sim run");
            trigger.record_outcome(true);
            outputs.push(out.result);
            reconf.apply(&mut vskel);
        }
        assert_eq!(vskel.version(), 1, "the promotion fired exactly once");
        let log: Vec<(TimeNs, u64, String)> = trigger
            .decision_log()
            .into_iter()
            .map(|d| (d.at, d.version, d.rule))
            .collect();
        (log, outputs)
    }

    let (log_a, out_a) = run_once();
    let (log_b, out_b) = run_once();
    assert_eq!(out_a, out_b);
    assert_eq!(out_a, vec![0, 1, 3, 6]);
    assert_eq!(log_a.len(), 1);
    assert_eq!(
        log_a, log_b,
        "decision log (virtual timestamps included) must replay identically"
    );
}

/// The PR 5 acceptance scenario: oscillating load on a skewed two-node
/// cluster. Exactly one audited `Offload` fires, provisioning brings the
/// hub online, the hysteresis-damped grain knob never reverses direction
/// within its cooldown window, stream results are identical to the
/// sequential reference — and the whole decision sequence (virtual
/// timestamps included) replays deterministically.
#[test]
fn skewed_cluster_offload_acceptance() {
    use autonomic_skeletons::dist::{Cluster, NodeSpec, ProvisionAction, ProvisioningPolicy};
    use autonomic_skeletons::skeletons::KindTag;
    use autonomic_skeletons::workloads::{GrainedSquareSum, OscillatingLoad};

    const COOLDOWN: usize = 4;

    struct Run {
        /// `(at, version, rule)` — action strings are excluded because
        /// they embed process-global fresh `NodeId`s.
        decisions: Vec<(TimeNs, u64, String)>,
        actions: Vec<String>,
        provisions: Vec<(TimeNs, String, usize)>,
        outputs: Vec<i64>,
        grain_trace: Vec<(usize, usize)>, // (item index, grain after apply)
        hub_busy: TimeNs,
    }

    fn run_once() -> Run {
        let scenario = GrainedSquareSum::new(32);
        let load = OscillatingLoad::new(4, 160, 3);
        let items = load.inputs(18);
        let leaf = MuscleId::new(
            scenario.program.node().children()[0].id,
            MuscleRole::Execute,
        );
        let cost = PerMuscleCost::new(Arc::new(TableCost::new(TimeNs::from_millis(1)))).route(
            leaf,
            Arc::new(
                LinearCost::new(TimeNs::ZERO, TimeNs::from_millis(1))
                    .with_probe(|p| p.downcast_ref::<Vec<i64>>().map(Vec::len)),
            ),
        );
        let cluster = Cluster::new(vec![
            NodeSpec::local("edge", 1),
            NodeSpec::remote("hub", 4, TimeNs::from_millis(2)).with_speed(2.0),
        ])
        .with_capacity(1);
        let telemetry = cluster.telemetry();
        let mut sim = SimEngine::with_workers(Box::new(cluster), Arc::new(cost));

        let trigger = TriggerEngine::new(0.5);
        sim.registry().add_listener(trigger.clone());
        trigger.add_rule(
            RetuneGrain::new(
                Knob::from_shared("grain", Arc::clone(&scenario.grain)),
                leaf,
                TimeNs::from_millis(10),
            )
            .bounds(4, 256)
            .hysteresis(autonomic_skeletons::adapt::Hysteresis::new(COOLDOWN, 0.2)),
        );
        trigger.add_rule(
            Offload::new(&scenario.program, "hub", telemetry.clone()).water_marks(0.7, 0.2),
        );
        let lp_view = telemetry.clone();
        let reconf = Reconfigurator::new(
            Arc::clone(sim.registry()),
            sim.clock().clone(),
            trigger.clone(),
        )
        .lp_source(move || lp_view.capacity().max(1));
        let mut policy = ProvisioningPolicy::new(0.8, 0.0).cooldown(3).announce_via(
            Arc::clone(sim.registry()),
            scenario.program.id(),
            KindTag::Map,
        );

        let mut vskel = VersionedSkel::new(&scenario.program);
        let clock = sim.clock().clone();
        let mut outputs = Vec::new();
        let mut grain_trace = Vec::new();
        for (k, input) in items.iter().enumerate() {
            let out = sim.run(vskel.skel(), input.clone()).expect("sim run");
            outputs.push(out.result);
            trigger.record_outcome(true);
            if let Some(capacity) = policy.review(&telemetry, clock.now()) {
                sim.set_lp(capacity);
            }
            if reconf.apply(&mut vskel) > 0 {
                grain_trace.push((k, scenario.grain.load(Ordering::SeqCst)));
            }
        }
        // Results identical to the sequential reference.
        for (k, input) in items.iter().enumerate() {
            assert_eq!(
                outputs[k],
                GrainedSquareSum::reference(input),
                "item {k} diverged"
            );
        }
        Run {
            decisions: trigger
                .decision_log()
                .iter()
                .map(|d| (d.at, d.version, d.rule.clone()))
                .collect(),
            actions: trigger
                .decision_log()
                .into_iter()
                .map(|d| format!("{}: {}", d.rule, d.action))
                .collect(),
            provisions: policy
                .log()
                .iter()
                .filter(|r| r.action == ProvisionAction::Add)
                .map(|r| (r.at, r.node.clone(), r.capacity))
                .collect(),
            outputs,
            grain_trace,
            hub_busy: telemetry.busy_per_node()[1],
        }
    }

    let a = run_once();
    // Exactly one audited Offload fired, onto the hub.
    let offloads: Vec<_> = a
        .actions
        .iter()
        .filter(|d| d.starts_with("offload:"))
        .collect();
    assert_eq!(offloads.len(), 1, "{:?}", a.actions);
    assert!(offloads[0].contains("`hub`"), "{:?}", offloads[0]);
    // Provisioning brought the hub online and offloaded work ran there.
    assert_eq!(a.provisions.len(), 1, "{:?}", a.provisions);
    assert_eq!(a.provisions[0].1, "hub");
    assert_eq!(a.provisions[0].2, 5, "edge slot + 4 hub slots");
    assert!(a.hub_busy > TimeNs::ZERO);
    // The grain knob moved, and never reversed direction within the
    // cooldown window (safe points = items here).
    assert!(!a.grain_trace.is_empty());
    let mut prev: Option<(usize, i64)> = None; // (item, direction)
    let mut grain = 32i64;
    for &(item, value) in &a.grain_trace {
        let dir = (value as i64 - grain).signum();
        if let Some((last_item, last_dir)) = prev {
            if dir != last_dir {
                assert!(
                    item - last_item >= COOLDOWN,
                    "grain reversed after {} items (cooldown {COOLDOWN}): {:?}",
                    item - last_item,
                    a.grain_trace
                );
            }
        }
        prev = Some((item, dir));
        grain = value as i64;
    }
    // Deterministic: the whole decision sequence replays identically.
    let b = run_once();
    assert_eq!(a.decisions, b.decisions, "virtual timestamps included");
    assert_eq!(a.provisions, b.provisions);
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.grain_trace, b.grain_trace);
}

/// LP-coupled promotion: the forecast gate (fed through the controller's
/// `read_estimates`/`seed_from` path) blocks an unprofitable promotion at
/// LP 1, opens at LP 4, and the decision log audits the predicted WCT
/// against the realized WCT of the first item under the new version.
#[test]
fn forecast_gated_promotion_audits_predicted_vs_realized() {
    use autonomic_skeletons::core::{AutonomicController, ControllerConfig, FnActuator};

    let v1: Skel<Vec<i64>, i64> = seq(|v: Vec<i64>| v.iter().sum::<i64>());
    let v2: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| v.chunks(4).map(|c| c.to_vec()).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v.iter().sum::<i64>()),
        |p: Vec<i64>| p.into_iter().sum::<i64>(),
    );
    let v1_fe = MuscleId::new(v1.id(), MuscleRole::Execute);
    let v2_fe = MuscleId::new(v2.node().children()[0].id, MuscleRole::Execute);
    let v2_fs = MuscleId::new(v2.id(), MuscleRole::Split);
    let v2_fm = MuscleId::new(v2.id(), MuscleRole::Merge);

    // The controller owns the estimates; the trigger seeds from it — the
    // two autonomic layers decide from one shared view of the world.
    let controller = AutonomicController::new(
        v1.node().clone(),
        ControllerConfig::new(TimeNs::from_secs(1), 4),
        Arc::new(FnActuator(|_| {})),
    );
    controller.with_estimates(|est| {
        est.init_duration(v1_fe, TimeNs::from_millis(800));
        est.init_duration(v2_fe, TimeNs::from_millis(200));
        est.init_duration(v2_fs, TimeNs::from_millis(1));
        est.init_duration(v2_fm, TimeNs::from_millis(1));
        est.init_cardinality(v2_fs, 4.0);
    });
    // The controller's own read path agrees with what the gate will see.
    let at1 = controller.forecast_wct(v2.node(), 1).unwrap();
    let at4 = controller.forecast_wct(v2.node(), 4).unwrap();
    assert!(at4 < at1);

    let run = |lp: usize| {
        let cost = Arc::new(
            TableCost::new(TimeNs::from_millis(1))
                .with(v1_fe, TimeNs::from_millis(800))
                .with(v2_fe, TimeNs::from_millis(200)),
        );
        let mut sim = SimEngine::new(lp, cost);
        let trigger = TriggerEngine::new(0.5);
        trigger.seed_from(&controller);
        sim.registry().add_listener(trigger.clone());
        trigger.add_rule(
            Promote::new(&v1, &v2)
                .named("gated-promote")
                .when(Trigger::InputSizeAtLeast(1.0))
                .forecast_gated(0.2),
        );
        let reconf = Reconfigurator::new(
            Arc::clone(sim.registry()),
            sim.clock().clone(),
            trigger.clone(),
        )
        .lp_source(move || lp);
        let mut vskel = VersionedSkel::new(&v1);
        let mut realized_wcts = Vec::new();
        for round in 0..3 {
            // Round 0's safe point sees no input-size EWMA yet, so the
            // earliest possible fire is round 1's — item 0 always runs
            // on v1, giving the audit a pre-rewrite item to skip.
            reconf.apply(&mut vskel);
            let input: Vec<i64> = (0..16).collect();
            let out = sim.run(vskel.skel(), input).expect("sim run");
            assert_eq!(out.result, 120, "round {round}");
            trigger.observe_input_size(16);
            trigger.record_outcome(true);
            realized_wcts.push(out.wct);
        }
        (vskel.version(), trigger.decision_log(), realized_wcts)
    };

    // LP 1: the fan-out buys nothing — the gate stays closed.
    let (version, log, _) = run(1);
    assert_eq!(version, 0, "unprofitable promotion blocked: {log:?}");
    assert!(log.is_empty());

    // LP 4: the forecast improves by far more than the 20% margin.
    let (version, log, wcts) = run(4);
    assert_eq!(version, 1);
    assert_eq!(log.len(), 1);
    assert_eq!(log[0].rule, "gated-promote");
    let forecast = log[0].forecast.expect("gated fire carries its forecast");
    assert!(
        forecast.predicted < forecast.baseline,
        "gate only opens on improvement: {forecast:?}"
    );
    assert!(log[0].why.contains("forecast"), "{}", log[0].why);
    // The realized WCT of the first item under the new version closed
    // the audit — and the promotion really was faster.
    let realized = forecast.realized.expect("first post-rewrite item audited");
    assert_eq!(realized, wcts[1], "the audit records the item's WCT");
    assert!(realized < wcts[0], "promotion paid off: {wcts:?}");
}

/// Sharing the estimator view: the self-configuration layer can seed its
/// trigger statistics from the self-optimization controller's live table.
#[test]
fn trigger_seeds_from_controller_estimates() {
    use autonomic_skeletons::core::{AutonomicController, ControllerConfig, FnActuator};

    let program: Skel<i64, i64> = seq(|x: i64| x + 1);
    let fe = MuscleId::new(program.id(), MuscleRole::Execute);
    let controller = AutonomicController::new(
        program.node().clone(),
        ControllerConfig::new(TimeNs::from_secs(1), 4),
        Arc::new(FnActuator(|_| {})),
    );
    controller.with_estimates(|est| est.init_duration(fe, TimeNs::from_millis(7)));

    let trigger = TriggerEngine::new(0.5);
    assert_eq!(trigger.read_estimates(|t| t.duration(fe)), None);
    trigger.seed_from(&controller);
    assert_eq!(
        trigger.read_estimates(|t| t.duration(fe)),
        Some(TimeNs::from_millis(7)),
        "trigger adopted the controller's live estimates"
    );
}

/// The engine-facing suppressed-panic noise check: a fragile muscle panic
/// inside a stream never tears the session, and the error streak is what
/// drives the swap (already covered above); here we pin the version
/// counter's visibility through the facade prelude.
#[test]
fn facade_exports_adaptive_surface() {
    let engine = Engine::new(1);
    let program: Skel<i64, i64> = seq(|x: i64| x * 2);
    let trigger = TriggerEngine::new(0.5);
    let mut stream = AdaptiveSession::new(&engine, &program, trigger);
    stream.feed(21);
    let out: Vec<i64> = stream.drain().map(|r| r.unwrap()).collect();
    assert_eq!(out, vec![42]);
    engine.shutdown();
    // Re-exported rule/record types are nameable through the prelude.
    let _ = |r: AdaptRecord| r.version;
    let _ = |v: VersionedSkel<i64, i64>| v.version();
    let _ = Reconfigurator::new;
    let _ = RetuneGrain::new;
}
