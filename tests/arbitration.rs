//! Acceptance tests for the multi-concern arbitration layer: conflicting
//! rule fires on one knob resolve to exactly one applied action per
//! [`ConflictPolicy`], losers land in the decision log as suppressed
//! records, and applied rewrites invalidate the estimator history of the
//! replaced subtree in the trigger engine *and* a synced WCT controller.

use std::sync::Arc;

use autonomic_skeletons::core::FnActuator;
use autonomic_skeletons::prelude::*;

/// Infrastructure for a rule-only safe point: no items need to run, the
/// reconfigurator just plans/arbitrates/applies against the sim's
/// registry and virtual clock.
fn harness(trigger: &Arc<TriggerEngine>) -> (SimEngine, Reconfigurator) {
    let sim = SimEngine::new(1, Arc::new(ZeroCost));
    let reconf = Reconfigurator::new(
        Arc::clone(sim.registry()),
        sim.clock().clone(),
        Arc::clone(trigger),
    )
    .lp_source(|| 4);
    (sim, reconf)
}

#[test]
fn same_knob_cost_beats_performance_at_equal_priority() {
    // A performance retune (wants width lp×2 = 8) and a cost guard
    // (over budget, wants the economy width 2) fire on the *same* knob
    // at one safe point. Under priority-wins with equal priorities the
    // concern rank breaks the tie — cost outranks performance — so
    // exactly one action applies and the loser is suppress-audited.
    let width = Knob::new("width", 4);
    let meter = NodeHoursMeter::new();
    let trigger = TriggerEngine::new(0.5);
    trigger.add_rule(RetuneWidth::new(width.clone(), 2).named("grow-width"));
    trigger.add_rule(CostGuard::knob(meter, TimeNs::ZERO, width.clone(), 2).named("cost-guard"));
    let (_sim, reconf) = harness(&trigger);
    let program: Skel<i64, i64> = seq(|x: i64| x);
    let mut vskel = VersionedSkel::new(&program);

    assert_eq!(reconf.apply(&mut vskel), 1, "exactly one action applied");
    assert_eq!(width.get(), 2, "the cost guard's economy width won");
    assert_eq!(vskel.version(), 1, "one version bump, not two");
    let log = trigger.decision_log();
    assert_eq!(log.len(), 2, "{log:?}");
    assert_eq!(log[0].rule, "cost-guard");
    assert!(
        log[0].action.contains("set knob `width` 4 -> 2"),
        "{:?}",
        log[0]
    );
    assert_eq!(log[1].rule, "grow-width");
    assert!(
        log[1].action.contains("suppressed by `cost-guard`"),
        "{:?}",
        log[1]
    );
    assert_eq!(log[1].version, 1, "suppressions do not bump the version");
}

#[test]
fn same_knob_priority_overrides_the_concern_rank() {
    // Same conflict, but the performance rule is explicitly prioritized:
    // priority compares before concern, so the grow wins and the cost
    // guard is the suppressed one.
    let width = Knob::new("width", 4);
    let meter = NodeHoursMeter::new();
    let trigger = TriggerEngine::new(0.5);
    trigger.add_rule(
        RetuneWidth::new(width.clone(), 2)
            .named("grow-width")
            .priority(5),
    );
    trigger.add_rule(CostGuard::knob(meter, TimeNs::ZERO, width.clone(), 2).named("cost-guard"));
    let (_sim, reconf) = harness(&trigger);
    let program: Skel<i64, i64> = seq(|x: i64| x);
    let mut vskel = VersionedSkel::new(&program);

    assert_eq!(reconf.apply(&mut vskel), 1);
    assert_eq!(width.get(), 8, "the prioritized performance grow won");
    let log = trigger.decision_log();
    assert_eq!(log.len(), 2, "{log:?}");
    assert_eq!(log[0].rule, "grow-width");
    assert_eq!(log[1].rule, "cost-guard");
    assert!(
        log[1].action.contains("suppressed by `grow-width`"),
        "{:?}",
        log[1]
    );
}

#[test]
fn veto_policy_blocks_the_knob_regardless_of_priority() {
    // The knob already sits at the economy width, so the cost guard
    // fires a *veto* (hold the knob) instead of an action. Under the
    // veto policy the contested knob moves not at all — even though the
    // performance rule outprioritizes the guard — and the blocked fire
    // is suppress-audited while the idle veto itself stays out of the
    // log.
    let width = Knob::new("width", 2);
    let meter = NodeHoursMeter::new();
    let trigger = TriggerEngine::new(0.5);
    trigger.add_rule(
        RetuneWidth::new(width.clone(), 2)
            .named("grow-width")
            .priority(5),
    );
    trigger.add_rule(CostGuard::knob(meter, TimeNs::ZERO, width.clone(), 2).named("cost-guard"));
    let (_sim, reconf) = harness(&trigger);
    let program: Skel<i64, i64> = seq(|x: i64| x);
    let mut vskel = VersionedSkel::new(&program);
    let reconf = reconf.conflict_policy(ConflictPolicy::Veto);

    assert_eq!(reconf.apply(&mut vskel), 0, "the veto blocked everything");
    assert_eq!(width.get(), 2, "the knob did not move");
    assert_eq!(vskel.version(), 0);
    let log = trigger.decision_log();
    assert_eq!(log.len(), 1, "{log:?}");
    assert_eq!(log[0].rule, "grow-width");
    assert!(
        log[0].action.contains("suppressed by `cost-guard`"),
        "{:?}",
        log[0]
    );
}

#[test]
fn uncontested_veto_is_dropped_silently() {
    // A veto with nothing to block is administrative noise: no record,
    // no version bump, and the vetoing rule re-arms for the next safe
    // point.
    let width = Knob::new("width", 2);
    let meter = NodeHoursMeter::new();
    let trigger = TriggerEngine::new(0.5);
    trigger.add_rule(CostGuard::knob(meter, TimeNs::ZERO, width.clone(), 2).named("cost-guard"));
    let (_sim, reconf) = harness(&trigger);
    let program: Skel<i64, i64> = seq(|x: i64| x);
    let mut vskel = VersionedSkel::new(&program);

    assert_eq!(reconf.apply(&mut vskel), 0);
    assert_eq!(
        reconf.apply(&mut vskel),
        0,
        "still quiet at the next safe point"
    );
    assert_eq!(width.get(), 2);
    assert_eq!(vskel.version(), 0);
    assert!(trigger.decision_log().is_empty());
}

#[test]
fn applied_rewrite_invalidates_estimates_in_trigger_and_synced_controller() {
    // The stale-forecast regression: a promoted-away subtree must not
    // leave estimator history behind, or the next forecast prices a
    // tree that no longer exists. Both tables are checked — the trigger
    // engine's own, and a synced WCT controller's.
    let inner = seq(|x: i64| x + 1);
    let outer = pipe(inner.clone(), seq(|x: i64| x * 2));
    let replacement = seq(|x: i64| x + 100);
    let inner_muscles = inner.node().collect_muscles();
    let outer_muscles = outer.node().collect_muscles();

    let trigger = TriggerEngine::new(0.5);
    trigger.add_rule(
        Promote::new(&inner, &replacement)
            .named("promote-inner")
            .when(Trigger::InputSizeAtLeast(1.0)),
    );
    let config = ControllerConfig::new(TimeNs::from_secs(1), 4).initial_lp(1);
    let controller =
        AutonomicController::new(outer.node().clone(), config, Arc::new(FnActuator(|_lp| {})));
    // Seed both tables with history for every muscle in the tree.
    let seed = |est: &mut autonomic_skeletons::core::EstimatorTable| {
        for d in &outer_muscles {
            est.init_duration(d.id, TimeNs::from_millis(3));
        }
    };
    trigger.with_estimates(seed);
    controller.with_estimates(seed);
    assert!(
        trigger.read_estimates(|est| est.covers(&inner_muscles)),
        "the gate is open before the rewrite"
    );

    let (_sim, reconf) = harness(&trigger);
    let reconf = reconf.sync_controller(Arc::clone(&controller));
    let mut vskel = VersionedSkel::new(&outer);
    trigger.observe_input_size(5);
    assert_eq!(reconf.apply(&mut vskel), 1);
    assert_eq!(vskel.version(), 1);

    let log = trigger.decision_log();
    assert_eq!(log.len(), 1, "{log:?}");
    assert!(
        log[0].action.contains("stale estimator entries"),
        "the record audits the invalidation: {:?}",
        log[0]
    );
    // The replaced subtree's history is gone from both tables; the
    // surviving stages keep theirs.
    for d in &inner_muscles {
        assert!(
            trigger.read_estimates(|est| est.duration(d.id)).is_none(),
            "stale trigger estimate for {:?}",
            d.id
        );
        controller.with_estimates(|est| {
            assert!(est.duration(d.id).is_none(), "stale controller estimate");
        });
    }
    let survivors = outer_muscles
        .iter()
        .filter(|d| d.id.node != inner.id())
        .count();
    assert!(survivors > 0);
    for d in outer_muscles.iter().filter(|d| d.id.node != inner.id()) {
        assert!(
            trigger.read_estimates(|est| est.duration(d.id)).is_some(),
            "surviving estimate dropped for {:?}",
            d.id
        );
    }
    // The forecast gate over the removed subtree's muscles is closed
    // again: a re-inserted copy would have to re-earn its estimates.
    assert!(!trigger.read_estimates(|est| est.covers(&inner_muscles)));
}
