//! End-to-end autonomic behaviour — on the *threaded* engine with real
//! sleeping muscles (coarse assertions: this host may have a single core),
//! and on the simulator for the extension kinds (if / fork / d&C) the
//! paper left as future work.

use std::sync::Arc;
use std::time::Duration;

use autonomic_skeletons::prelude::*;
use autonomic_skeletons::{AutonomicEngine, AutonomicSim};

fn sleepy_map(children: usize, per_child: Duration) -> Skel<Vec<i64>, i64> {
    let _ = children;
    map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(move |v: Vec<i64>| {
            std::thread::sleep(per_child);
            v[0]
        }),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    )
}

#[test]
fn threaded_controller_raises_lp_with_real_threads() {
    // 12 children × 30ms = 360ms sequential; goal 150ms forces a raise.
    let program = sleepy_map(12, Duration::from_millis(30));
    let muscles = program.node().collect_muscles();
    let config = ControllerConfig::new(TimeNs::from_millis(150), 8).initial_lp(1);
    let auto = AutonomicEngine::new(program, config);
    auto.controller().with_estimates(|est| {
        for d in &muscles {
            let dur = match d.id.role {
                MuscleRole::Execute => TimeNs::from_millis(30),
                _ => TimeNs::from_millis(1),
            };
            est.init_duration(d.id, dur);
            if d.id.role == MuscleRole::Split {
                est.init_cardinality(d.id, 12.0);
            }
        }
    });
    let result = auto.submit((1..=12).collect()).get().unwrap();
    assert_eq!(result, 78);
    let decisions = auto.controller().decisions();
    let peak = decisions.iter().map(|d| d.to_lp).max().unwrap_or(1);
    assert!(
        peak > 1,
        "controller should have raised the LP: {decisions:?}"
    );
    assert!(auto.engine().pool().telemetry().peak_active() > 1);
    auto.shutdown();
}

#[test]
fn consecutive_submissions_reuse_learned_estimates() {
    // First run learns; the second can adapt from its very first events.
    let program = sleepy_map(6, Duration::from_millis(20));
    let config = ControllerConfig::new(TimeNs::from_millis(100), 8).initial_lp(1);
    let auto = AutonomicEngine::new(program, config);
    let first = auto.submit((1..=6).collect()).get().unwrap();
    assert_eq!(first, 21);
    let decisions_after_first = auto.controller().decisions().len();
    let second = auto.submit((1..=6).collect()).get().unwrap();
    assert_eq!(second, 21);
    let decisions_after_second = auto.controller().decisions().len();
    assert!(
        decisions_after_second > decisions_after_first || decisions_after_first > 0,
        "the second run should benefit from learned estimates"
    );
    auto.shutdown();
}

#[test]
fn dac_workload_is_supervised() {
    // d&C estimation: recursion depth |fc| and fan-out |fs| are learned
    // and predicted (the paper's d&C state machine).
    let program: Skel<i64, i64> = dac(
        |x: &i64| *x >= 4,
        |x: i64| vec![x / 2, x - x / 2],
        seq(|x: i64| x),
        |parts: Vec<i64>| parts.into_iter().sum(),
    );
    let cost = Arc::new(TableCost::new(TimeNs::from_millis(100)));
    let config = ControllerConfig::new(TimeNs::from_millis(900), 8).initial_lp(1);
    let mut auto = AutonomicSim::new(program, config, cost);
    // Cold first run to learn depth/fan-out…
    let first = auto.run(16).unwrap();
    assert_eq!(first.result, 16);
    // …then a supervised run that can adapt early.
    let second = auto.run(16).unwrap();
    assert_eq!(second.result, 16);
    assert!(
        !auto.controller().decisions().is_empty(),
        "controller should adapt the d&C run"
    );
}

#[test]
fn if_and_fork_extension_kinds_are_tracked() {
    // The paper leaves if/fork unsupported; we track them. The controller
    // must build sensible ADGs and adapt a fork of uneven branches.
    let program: Skel<Vec<i64>, i64> = fork(
        |v: Vec<i64>| {
            let mid = v.len() / 2;
            vec![v[..mid].to_vec(), v[mid..].to_vec()]
        },
        vec![
            map(
                |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
                seq(|v: Vec<i64>| v[0]),
                |p: Vec<i64>| p.into_iter().sum::<i64>(),
            ),
            seq(|v: Vec<i64>| v.into_iter().sum::<i64>()),
        ],
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let cost = Arc::new(TableCost::new(TimeNs::from_millis(50)));
    let config = ControllerConfig::new(TimeNs::from_millis(400), 8).initial_lp(1);
    let mut auto = AutonomicSim::new(program, config, cost);
    let first = auto.run((1..=8).collect()).unwrap();
    assert_eq!(first.result, 36);
    let second = auto.run((1..=8).collect()).unwrap();
    assert_eq!(second.result, 36);
    assert!(
        second.wct <= first.wct,
        "supervised second run must not be slower: {} vs {}",
        second.wct,
        first.wct
    );
}

#[test]
fn estimates_transfer_between_engine_kinds() {
    // Learn on the simulator, deploy on the threaded engine: the snapshot
    // speaks MuscleIds, which both engines share.
    let program = sleepy_map(4, Duration::from_millis(5));
    let cost = Arc::new(TableCost::new(TimeNs::from_millis(5)));
    let sim_config = ControllerConfig::new(TimeNs::from_millis(50), 8).initial_lp(1);
    let mut sim_auto = AutonomicSim::new(program.clone(), sim_config, cost);
    sim_auto.run((1..=4).collect()).unwrap();
    let snapshot = sim_auto.controller().snapshot();
    assert!(!snapshot.durations.is_empty());

    let config = ControllerConfig::new(TimeNs::from_millis(50), 8).initial_lp(2);
    let auto = AutonomicEngine::new(program, config);
    auto.init_estimates(&snapshot);
    let result = auto.submit((1..=4).collect()).get().unwrap();
    assert_eq!(result, 10);
    auto.shutdown();
}
