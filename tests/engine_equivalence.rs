//! Property tests: the threaded engine, the simulator and the sequential
//! reference interpreter must agree on every program — for randomly
//! generated skeleton ASTs over `i64`.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use askel_engine::Engine;
use askel_sim::cost::ZeroCost;
use askel_sim::SimEngine;
use askel_skeletons::{dac, fork, map, pipe, seq, sfor, sif, swhile, Skel};

/// A generated program: the skeleton plus a description for shrinking
/// diagnostics.
#[derive(Clone)]
struct Program {
    skel: Skel<i64, i64>,
    desc: String,
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.desc)
    }
}

fn leaf_strategy() -> impl Strategy<Value = Program> {
    prop_oneof![
        (0i64..20).prop_map(|k| Program {
            skel: seq(move |x: i64| x.wrapping_add(k)),
            desc: format!("seq(+{k})"),
        }),
        Just(Program {
            skel: seq(|x: i64| x.wrapping_mul(3)),
            desc: "seq(*3)".into(),
        }),
        Just(Program {
            skel: seq(|x: i64| x ^ 0x5A),
            desc: "seq(^0x5A)".into(),
        }),
    ]
}

fn program_strategy() -> impl Strategy<Value = Program> {
    leaf_strategy().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // pipe(a, b)
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Program {
                skel: pipe(a.skel, b.skel),
                desc: format!("pipe({}, {})", a.desc, b.desc),
            }),
            // farm(a)
            inner.clone().prop_map(|a| Program {
                skel: askel_skeletons::farm(a.skel),
                desc: format!("farm({})", a.desc),
            }),
            // for(n, a) — body must be i64 → i64, which it is.
            (0usize..4, inner.clone()).prop_map(|(n, a)| Program {
                skel: sfor(n, a.skel),
                desc: format!("for({n}, {})", a.desc),
            }),
            // while(x < bound, clamp-up body) after a — guaranteed to
            // terminate: the body strictly increases below the bound and
            // first lifts the value to at least -bound, so the loop runs
            // O(bound) iterations. (Running `a` *inside* the body is not
            // safe: an arbitrary sub-program can drift the value down by
            // a little every iteration, and the loop then needs ~2^63
            // steps to wrap around.)
            (1i64..50, inner.clone()).prop_map(|(bound, a)| Program {
                skel: pipe(
                    a.skel,
                    swhile(
                        move |x: &i64| *x < bound,
                        seq(move |x: i64| bound.min(x.max(-bound).saturating_add(7))),
                    ),
                ),
                desc: format!("pipe({}, while(<{bound}, +7))", a.desc),
            }),
            // if(even, a, b)
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Program {
                skel: sif(|x: &i64| x % 2 == 0, a.skel, b.skel),
                desc: format!("if(even, {}, {})", a.desc, b.desc),
            }),
            // map: split into c parts, apply a, sum.
            (1usize..5, inner.clone()).prop_map(|(c, a)| Program {
                skel: map(
                    move |x: i64| (0..c as i64).map(|k| x.wrapping_add(k)).collect::<Vec<_>>(),
                    a.skel,
                    |parts: Vec<i64>| parts.iter().fold(0i64, |s, v| s.wrapping_add(*v)),
                ),
                desc: format!("map({c}, {})", a.desc),
            }),
            // fork with 2 distinct branches.
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Program {
                skel: fork(
                    |x: i64| vec![x, x.wrapping_add(1)],
                    vec![a.skel, b.skel],
                    |parts: Vec<i64>| parts.iter().fold(0i64, |s, v| s.wrapping_add(*v)),
                ),
                desc: format!("fork({}, {})", a.desc, b.desc),
            }),
            // d&C: normalize into [0, 200) — upstream stages can inflate
            // the value arbitrarily (wrapping products), and the split
            // produces ~x/threshold leaves — then halve values above the
            // threshold; base = a.
            (4i64..32, inner).prop_map(|(threshold, a)| Program {
                skel: pipe(
                    seq(|x: i64| x.rem_euclid(200)),
                    dac(
                        move |x: &i64| *x > threshold,
                        |x: i64| vec![x / 2, x - x / 2],
                        a.skel,
                        |parts: Vec<i64>| parts.iter().fold(0i64, |s, v| s.wrapping_add(*v)),
                    ),
                ),
                desc: format!("dac(>{threshold}, %200 {})", a.desc),
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn threaded_engine_agrees_with_reference(program in program_strategy(), input in -100i64..100) {
        let expected = program.skel.apply(input);
        let engine = Engine::new(2);
        let got = engine
            .submit(&program.skel, input)
            .get_timeout(Duration::from_secs(60))
            .expect("engine timed out")
            .expect("engine failed");
        engine.shutdown();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn simulator_agrees_with_reference(program in program_strategy(), input in -100i64..100) {
        let expected = program.skel.apply(input);
        let mut sim = SimEngine::new(2, Arc::new(ZeroCost));
        let got = sim.run(&program.skel, input).expect("sim failed");
        prop_assert_eq!(got.result, expected);
    }

    #[test]
    fn simulator_result_is_lp_invariant(program in program_strategy(), input in -100i64..100) {
        // Functional result must not depend on the LP.
        let mut results = Vec::new();
        for lp in [1usize, 2, 7] {
            let mut sim = SimEngine::new(lp, Arc::new(ZeroCost));
            results.push(sim.run(&program.skel, input).expect("sim failed").result);
        }
        prop_assert_eq!(results[0], results[1]);
        prop_assert_eq!(results[1], results[2]);
    }
}
