//! Cross-crate guarantees of the event layer, checked on both engines:
//! pairing, ordering, the thread guarantee, and payload transformation.

use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;
use std::thread::ThreadId;

use askel_engine::Engine;
use askel_events::util::{EventCollector, RecordedEvent};
use askel_events::{EventFilter, FnListener, When, Where};
use askel_sim::cost::ZeroCost;
use askel_sim::SimEngine;
use askel_skeletons::{map, seq, swhile, InstanceId, Skel};

fn nested_map() -> Skel<Vec<i64>, i64> {
    let inner = map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0] + 1),
        |p: Vec<i64>| p.into_iter().sum::<i64>(),
    );
    map(
        |v: Vec<i64>| v.chunks(2).map(|c| c.to_vec()).collect::<Vec<_>>(),
        inner,
        |p: Vec<i64>| p.into_iter().sum::<i64>(),
    )
}

/// Every Before event must have exactly one matching After event with the
/// same (node, index, wher), and Before must come first.
fn assert_paired(events: &[RecordedEvent]) {
    let mut open: HashMap<(u64, u64, Where), usize> = HashMap::new();
    for e in events {
        let key = (e.node.0, e.index.0, e.wher);
        match e.when {
            When::Before => *open.entry(key).or_insert(0) += 1,
            When::After => {
                let c = open.get_mut(&key).unwrap_or_else(|| {
                    panic!("After without Before: {e:?}");
                });
                assert!(*c > 0, "After without open Before: {e:?}");
                *c -= 1;
            }
        }
    }
    // While/for raise several nested/condition pairs per instance; all
    // must be closed at the end.
    for (key, count) in open {
        assert_eq!(count, 0, "unclosed Before for {key:?}");
    }
}

#[test]
fn sim_events_are_paired_and_deterministic() {
    let program = nested_map();
    let run = || {
        let collector = EventCollector::new();
        let mut sim = SimEngine::new(2, Arc::new(ZeroCost));
        sim.registry().add_listener(collector.clone());
        sim.run(&program, (1..=6).collect()).unwrap();
        collector.snapshot()
    };
    let a = run();
    assert_paired(&a);
    let b = run();
    // Same structure run-to-run (instance ids differ; shapes must match).
    let shape = |evs: &[RecordedEvent]| {
        evs.iter()
            .map(|e| (e.node, e.when, e.wher))
            .collect::<Vec<_>>()
    };
    assert_eq!(shape(&a), shape(&b));
}

#[test]
fn threaded_events_are_paired() {
    let program = nested_map();
    let collector = EventCollector::new();
    let engine = Engine::new(3);
    engine.registry().add_listener(collector.clone());
    engine.submit(&program, (1..=6).collect()).get().unwrap();
    engine.shutdown();
    let events = collector.snapshot();
    assert_paired(&events);
    // 1 outer map + 3 inner maps + 6 seqs... exact counts: outer: b/a,
    // bs/as, bm/am, 3×(bn/an) = 12; inner ×3: 12+... keep it structural:
    let seq_events = events
        .iter()
        .filter(|e| e.kind == askel_skeletons::KindTag::Seq)
        .count();
    assert_eq!(seq_events, 12, "6 seq instances × (before + after)");
}

#[test]
fn seq_before_and_after_fire_on_the_muscles_thread() {
    // The paper's guarantee: the handler runs on the same thread as the
    // related muscle. For seq, Before/After bracket fe directly; we record
    // the thread ids seen by the listener and by the muscle itself.
    let muscle_threads: Arc<Mutex<Vec<ThreadId>>> = Arc::new(Mutex::new(Vec::new()));
    let event_threads: Arc<Mutex<Vec<(When, ThreadId)>>> = Arc::new(Mutex::new(Vec::new()));

    let mt = Arc::clone(&muscle_threads);
    let program: Skel<i64, i64> = seq(move |x: i64| {
        mt.lock().unwrap().push(std::thread::current().id());
        x * 2
    });

    let engine = Engine::new(2);
    let et = Arc::clone(&event_threads);
    engine.registry().add_filtered(
        EventFilter::all().kind(askel_skeletons::KindTag::Seq),
        Arc::new(FnListener(
            move |_: &mut askel_events::Payload<'_>, e: &askel_events::Event| {
                et.lock()
                    .unwrap()
                    .push((e.when, std::thread::current().id()));
            },
        )),
    );
    engine.submit(&program, 21).get().unwrap();
    engine.shutdown();

    let muscle_thread = muscle_threads.lock().unwrap()[0];
    let events = event_threads.lock().unwrap();
    assert_eq!(events.len(), 2);
    for (when, tid) in events.iter() {
        assert_eq!(
            *tid, muscle_thread,
            "{when} event must run on the muscle's thread"
        );
    }
}

#[test]
fn split_cardinality_is_reported() {
    let program = nested_map();
    let collector = EventCollector::new();
    let mut sim = SimEngine::new(1, Arc::new(ZeroCost));
    sim.registry().add_listener(collector.clone());
    sim.run(&program, (1..=6).collect()).unwrap();
    let outer_card: Vec<usize> = collector
        .snapshot()
        .iter()
        .filter(|e| e.node == program.id() && e.wher == Where::Split && e.when == When::After)
        .filter_map(|e| e.info.split_cardinality())
        .collect();
    assert_eq!(
        outer_card,
        vec![3],
        "6 items / chunks of 2 = 3 sub-problems"
    );
}

#[test]
fn transforming_listener_changes_the_result_on_both_engines() {
    let program: Skel<i64, i64> = seq(|x: i64| x + 1);
    let make_listener = || {
        Arc::new(FnListener(
            |p: &mut askel_events::Payload<'_>, e: &askel_events::Event| {
                if e.when == When::After {
                    if let Some(x) = p.downcast_mut::<i64>() {
                        *x *= 10;
                    }
                }
            },
        ))
    };

    let engine = Engine::new(1);
    engine.registry().add_listener(make_listener());
    let threaded = engine.submit(&program, 4).get().unwrap();
    engine.shutdown();

    let mut sim = SimEngine::new(1, Arc::new(ZeroCost));
    sim.registry().add_listener(make_listener());
    let simulated = sim.run(&program, 4).unwrap().result;

    assert_eq!(threaded, 50);
    assert_eq!(simulated, 50);
}

#[test]
fn while_condition_results_are_observable() {
    let program = swhile(|x: &i64| *x < 3, seq(|x: i64| x + 1));
    let collector = EventCollector::new();
    let mut sim = SimEngine::new(1, Arc::new(ZeroCost));
    sim.registry().add_listener(collector.clone());
    let out = sim.run(&program, 0).unwrap();
    assert_eq!(out.result, 3);
    let verdicts: Vec<bool> = collector
        .snapshot()
        .iter()
        .filter(|e| e.wher == Where::Condition && e.when == When::After)
        .filter_map(|e| e.info.condition_result())
        .collect();
    assert_eq!(verdicts, vec![true, true, true, false]);
}

#[test]
fn instance_indices_correlate_before_and_after() {
    let program = nested_map();
    let collector = EventCollector::new();
    let mut sim = SimEngine::new(2, Arc::new(ZeroCost));
    sim.registry().add_listener(collector.clone());
    sim.run(&program, (1..=6).collect()).unwrap();
    // For every instance index, the set of events forms the full
    // per-instance protocol (skeleton b/a at least).
    let mut per_instance: HashMap<InstanceId, Vec<(When, Where)>> = HashMap::new();
    for e in collector.snapshot() {
        per_instance
            .entry(e.index)
            .or_default()
            .push((e.when, e.wher));
    }
    for (inst, evs) in per_instance {
        assert!(
            evs.contains(&(When::Before, Where::Skeleton)),
            "{inst}: missing skeleton-begin"
        );
        assert!(
            evs.contains(&(When::After, Where::Skeleton)),
            "{inst}: missing skeleton-end"
        );
    }
}
