//! Failure injection across the stack: panicking muscles, structural
//! errors, pathological listeners, and resource floor/ceiling abuse.

use std::sync::Arc;
use std::time::Duration;

use autonomic_skeletons::prelude::*;
use autonomic_skeletons::AutonomicSim;

#[test]
fn panic_in_nested_child_poisons_only_that_submission() {
    let program: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| {
            if v[0] == 13 {
                panic!("unlucky child");
            }
            v[0]
        }),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let engine = Engine::new(2);
    let poisoned = engine.submit(&program, vec![1, 13, 3]);
    let healthy = engine.submit(&program, vec![1, 2, 3]);
    assert!(matches!(
        poisoned.get_timeout(Duration::from_secs(30)).unwrap(),
        Err(EngineError::MusclePanic(_))
    ));
    assert_eq!(
        healthy
            .get_timeout(Duration::from_secs(30))
            .unwrap()
            .unwrap(),
        6
    );
    engine.shutdown();
}

#[test]
fn panicking_listener_poisons_like_a_muscle() {
    let program: Skel<i64, i64> = seq(|x: i64| x);
    let engine = Engine::new(1);
    engine.registry().add_listener(Arc::new(FnListener(
        |_: &mut Payload<'_>, _: &autonomic_skeletons::events::Event| {
            panic!("listener bug");
        },
    )));
    let err = engine
        .submit(&program, 1)
        .get_timeout(Duration::from_secs(30))
        .unwrap()
        .unwrap_err();
    assert!(matches!(err, EngineError::MusclePanic(m) if m.contains("listener bug")));
    engine.shutdown();
}

#[test]
fn controller_survives_a_poisoned_run_and_supervises_the_next() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let explode = Arc::new(AtomicBool::new(true));
    let e2 = Arc::clone(&explode);
    let program: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(move |v: Vec<i64>| {
            if e2.load(Ordering::SeqCst) && v[0] == 2 {
                panic!("first run explodes");
            }
            v[0]
        }),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let cost = Arc::new(TableCost::new(TimeNs::from_millis(10)));
    let config = ControllerConfig::new(TimeNs::from_millis(100), 4).initial_lp(1);
    let mut auto = AutonomicSim::new(program, config, cost);
    assert!(auto.run(vec![1, 2, 3]).is_err());
    explode.store(false, std::sync::atomic::Ordering::SeqCst);
    let ok = auto.run(vec![1, 2, 3]).unwrap();
    assert_eq!(ok.result, 6);
}

#[test]
fn fork_arity_mismatch_reported_by_both_engines() {
    let program: Skel<i64, i64> = fork(
        |x: i64| vec![x; 5],
        vec![seq(|x: i64| x), seq(|x: i64| x)],
        |parts: Vec<i64>| parts.into_iter().sum(),
    );
    let engine = Engine::new(1);
    let threaded = engine
        .submit(&program, 1)
        .get_timeout(Duration::from_secs(30))
        .unwrap();
    engine.shutdown();
    assert!(matches!(threaded, Err(EngineError::Eval(_))));

    let mut sim = SimEngine::new(1, Arc::new(ZeroCost));
    assert!(matches!(
        sim.run(&program, 1),
        Err(autonomic_skeletons::sim::SimError::Eval(_))
    ));
}

#[test]
fn min_lp_floor_keeps_the_engine_alive() {
    // A controller that would love to shrink to zero cannot go below
    // min_lp = 1, so the run always completes.
    let program: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0]),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let muscles = program.node().collect_muscles();
    let cost = Arc::new(TableCost::new(TimeNs::from_millis(1)));
    // Goal so loose any LP meets it: maximal decrease pressure.
    let config = ControllerConfig::new(TimeNs::from_secs(3_600), 8)
        .initial_lp(4)
        .decrease(DecreasePolicy::ToMinimal);
    let mut auto = AutonomicSim::new(program, config, cost);
    auto.controller().with_estimates(|est| {
        for d in &muscles {
            est.init_duration(d.id, TimeNs::from_millis(1));
            if d.id.role == MuscleRole::Split {
                est.init_cardinality(d.id, 16.0);
            }
        }
    });
    let out = auto.run((1..=16).collect()).unwrap();
    assert_eq!(out.result, 136);
    assert!(auto.controller().current_lp() >= 1);
}

#[test]
fn zero_cardinality_splits_flow_through_the_autonomic_stack() {
    let program: Skel<Vec<i64>, i64> = map(
        |_: Vec<i64>| Vec::<Vec<i64>>::new(),
        seq(|v: Vec<i64>| v[0]),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let cost = Arc::new(TableCost::new(TimeNs::from_millis(1)));
    let config = ControllerConfig::new(TimeNs::from_millis(100), 4).initial_lp(1);
    let mut auto = AutonomicSim::new(program, config, cost);
    let first = auto.run(vec![]).unwrap();
    assert_eq!(first.result, 0);
    // Second run predicts with |fs| ≈ 0 — must not panic or stall.
    let second = auto.run(vec![]).unwrap();
    assert_eq!(second.result, 0);
}

/// A remote node that starts erroring mid-stream: the `Offload` rule has
/// moved the map onto the hub, then the hub's execution starts panicking;
/// two consecutive item errors trigger a `FallbackSwap` whose fallback is
/// an **unplaced** (local) implementation — the offload-back. The swap
/// re-arms the offload concern (`Rule::on_replaced` retargets it at the
/// fallback subtree), so once the edge re-skews the rule offloads the
/// *robust* map back onto the hub. No item is lost or duplicated, and
/// the sim decision log replays deterministically.
#[test]
fn remote_errors_trigger_fallback_swap_offload_back() {
    use autonomic_skeletons::adapt::Reconfigurator;
    use autonomic_skeletons::dist::{Cluster, NodeSpec};

    const POISON: i64 = -999;

    fn build_map(robust: bool) -> Skel<Vec<i64>, i64> {
        map(
            |v: Vec<i64>| {
                let mid = (v.len() / 2).max(1).min(v.len());
                let (a, b) = v.split_at(mid);
                vec![a.to_vec(), b.to_vec()]
            },
            seq(move |chunk: Vec<i64>| {
                if !robust && chunk.contains(&POISON) {
                    panic!("remote node rejected a poisoned chunk");
                }
                chunk.iter().filter(|x| **x != POISON).sum::<i64>()
            }),
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        )
    }

    struct Run {
        outcomes: Vec<Result<i64, String>>,
        decisions: Vec<(TimeNs, u64, String)>,
        edge_busy_before_swap: TimeNs,
        hub_got_work: bool,
        hub_busy_at_swap: TimeNs,
        hub_busy_final: TimeNs,
        final_version: u64,
    }

    fn run_once() -> Run {
        let fragile = build_map(false);
        let robust = build_map(true);
        // Two edge slots first, so the unplaced two-chunk fan-out runs
        // entirely on the edge and the skew recruits the hub.
        let cluster = Cluster::new(vec![
            NodeSpec::local("edge", 2),
            NodeSpec::remote("hub", 2, TimeNs::from_millis(5)),
        ]);
        let telemetry = cluster.telemetry();
        let cost = Arc::new(TableCost::new(TimeNs::from_millis(10)));
        let mut sim = SimEngine::with_workers(Box::new(cluster), cost);

        let trigger = autonomic_skeletons::adapt::TriggerEngine::new(0.5);
        sim.registry().add_listener(trigger.clone());
        trigger.add_rule(
            autonomic_skeletons::adapt::Offload::new(&fragile, "hub", telemetry.clone())
                .water_marks(0.7, 0.2),
        );
        trigger.add_rule(FallbackSwap::new(&fragile, &robust, 2).named("offload-back"));
        let reconf = Reconfigurator::new(
            Arc::clone(sim.registry()),
            sim.clock().clone(),
            trigger.clone(),
        )
        .lp_source(|| 4);

        let mut vskel = VersionedSkel::new(&fragile);
        // Items 3 and 4 are poisoned: the hub (where the offload moved
        // the map) starts erroring mid-stream. The long healthy tail
        // after the swap lets the edge's cumulative busy share re-skew
        // past the high water mark, so the re-armed offload fires again.
        let items: Vec<Vec<i64>> = (0..28)
            .map(|k| {
                if k == 3 || k == 4 {
                    vec![k, POISON, k + 1, k + 2]
                } else {
                    vec![k, k + 1, k + 2, k + 3]
                }
            })
            .collect();
        let fed = items.len();
        let mut outcomes = Vec::new();
        let mut edge_busy_before_swap = TimeNs::ZERO;
        let mut hub_got_work = false;
        let mut hub_busy_at_swap = None;
        for input in &items {
            let result = match sim.run(vskel.skel(), input.clone()) {
                Ok(out) => Ok(out.result),
                Err(e) => Err(e.to_string()),
            };
            trigger.record_outcome(result.is_ok());
            outcomes.push(result);
            if vskel.version() < 2 {
                edge_busy_before_swap = telemetry.busy_per_node()[0];
            }
            reconf.apply(&mut vskel);
            hub_got_work |= telemetry.busy_per_node()[1] > TimeNs::ZERO;
            if vskel.version() >= 2 && hub_busy_at_swap.is_none() {
                hub_busy_at_swap = Some(telemetry.busy_per_node()[1]);
            }
        }
        assert_eq!(outcomes.len(), fed, "one outcome per fed item");
        Run {
            outcomes,
            decisions: trigger
                .decision_log()
                .into_iter()
                .map(|d| (d.at, d.version, d.rule))
                .collect(),
            edge_busy_before_swap,
            hub_got_work,
            hub_busy_at_swap: hub_busy_at_swap.expect("the swap happened"),
            hub_busy_final: telemetry.busy_per_node()[1],
            final_version: vskel.version(),
        }
    }

    let a = run_once();
    // No item lost or duplicated: exactly the two streak items failed,
    // every other item computed the reference sum.
    let errors: Vec<usize> = a
        .outcomes
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_err().then_some(i))
        .collect();
    assert_eq!(errors, vec![3, 4], "{:?}", a.outcomes);
    for (k, outcome) in a.outcomes.iter().enumerate() {
        if let Ok(sum) = outcome {
            let expected: i64 = (k as i64..k as i64 + 4).sum();
            assert_eq!(*sum, expected, "item {k}");
        }
    }
    // The interplay: offload to the hub first, then the error streak
    // swaps in the local (unplaced) fallback — offload-back — and once
    // the edge re-skews, the re-armed offload places the robust map
    // back onto the hub. Before the `on_replaced` retargeting hook the
    // offload's once-latch stayed spent after the swap and the third
    // decision never happened.
    let rules: Vec<&str> = a.decisions.iter().map(|d| d.2.as_str()).collect();
    assert_eq!(
        rules,
        vec!["offload", "offload-back", "offload"],
        "{:?}",
        a.decisions
    );
    assert_eq!(a.final_version, 3);
    assert!(a.edge_busy_before_swap > TimeNs::ZERO);
    assert!(a.hub_got_work, "the offload really moved work to the hub");
    assert!(
        a.hub_busy_final > a.hub_busy_at_swap,
        "the re-offload moved work back to the hub: {:?} vs {:?}",
        a.hub_busy_final,
        a.hub_busy_at_swap
    );
    // Pinned: the decision log (virtual timestamps included) replays.
    let b = run_once();
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.outcomes, b.outcomes);
}

#[test]
fn overdue_activities_do_not_break_estimation() {
    // A muscle that takes far longer than its estimate: the past-clamp
    // (tf = now) applies and the controller keeps functioning.
    let program: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0]),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let muscles = program.node().collect_muscles();
    let cost = Arc::new(TableCost::new(TimeNs::from_secs(1)));
    let config = ControllerConfig::new(TimeNs::from_secs(2), 8).initial_lp(1);
    let mut auto = AutonomicSim::new(program, config, cost);
    auto.controller().with_estimates(|est| {
        for d in &muscles {
            // Wildly optimistic: everything "should" take 1ms.
            est.init_duration(d.id, TimeNs::from_millis(1));
            if d.id.role == MuscleRole::Split {
                est.init_cardinality(d.id, 4.0);
            }
        }
    });
    let out = auto.run((1..=4).collect()).unwrap();
    assert_eq!(out.result, 10);
}
