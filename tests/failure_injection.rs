//! Failure injection across the stack: panicking muscles, structural
//! errors, pathological listeners, and resource floor/ceiling abuse.

use std::sync::Arc;
use std::time::Duration;

use autonomic_skeletons::prelude::*;
use autonomic_skeletons::AutonomicSim;

#[test]
fn panic_in_nested_child_poisons_only_that_submission() {
    let program: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| {
            if v[0] == 13 {
                panic!("unlucky child");
            }
            v[0]
        }),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let engine = Engine::new(2);
    let poisoned = engine.submit(&program, vec![1, 13, 3]);
    let healthy = engine.submit(&program, vec![1, 2, 3]);
    assert!(matches!(
        poisoned.get_timeout(Duration::from_secs(30)).unwrap(),
        Err(EngineError::MusclePanic(_))
    ));
    assert_eq!(
        healthy
            .get_timeout(Duration::from_secs(30))
            .unwrap()
            .unwrap(),
        6
    );
    engine.shutdown();
}

#[test]
fn panicking_listener_poisons_like_a_muscle() {
    let program: Skel<i64, i64> = seq(|x: i64| x);
    let engine = Engine::new(1);
    engine.registry().add_listener(Arc::new(FnListener(
        |_: &mut Payload<'_>, _: &autonomic_skeletons::events::Event| {
            panic!("listener bug");
        },
    )));
    let err = engine
        .submit(&program, 1)
        .get_timeout(Duration::from_secs(30))
        .unwrap()
        .unwrap_err();
    assert!(matches!(err, EngineError::MusclePanic(m) if m.contains("listener bug")));
    engine.shutdown();
}

#[test]
fn controller_survives_a_poisoned_run_and_supervises_the_next() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let explode = Arc::new(AtomicBool::new(true));
    let e2 = Arc::clone(&explode);
    let program: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(move |v: Vec<i64>| {
            if e2.load(Ordering::SeqCst) && v[0] == 2 {
                panic!("first run explodes");
            }
            v[0]
        }),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let cost = Arc::new(TableCost::new(TimeNs::from_millis(10)));
    let config = ControllerConfig::new(TimeNs::from_millis(100), 4).initial_lp(1);
    let mut auto = AutonomicSim::new(program, config, cost);
    assert!(auto.run(vec![1, 2, 3]).is_err());
    explode.store(false, std::sync::atomic::Ordering::SeqCst);
    let ok = auto.run(vec![1, 2, 3]).unwrap();
    assert_eq!(ok.result, 6);
}

#[test]
fn fork_arity_mismatch_reported_by_both_engines() {
    let program: Skel<i64, i64> = fork(
        |x: i64| vec![x; 5],
        vec![seq(|x: i64| x), seq(|x: i64| x)],
        |parts: Vec<i64>| parts.into_iter().sum(),
    );
    let engine = Engine::new(1);
    let threaded = engine
        .submit(&program, 1)
        .get_timeout(Duration::from_secs(30))
        .unwrap();
    engine.shutdown();
    assert!(matches!(threaded, Err(EngineError::Eval(_))));

    let mut sim = SimEngine::new(1, Arc::new(ZeroCost));
    assert!(matches!(
        sim.run(&program, 1),
        Err(autonomic_skeletons::sim::SimError::Eval(_))
    ));
}

#[test]
fn min_lp_floor_keeps_the_engine_alive() {
    // A controller that would love to shrink to zero cannot go below
    // min_lp = 1, so the run always completes.
    let program: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0]),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let muscles = program.node().collect_muscles();
    let cost = Arc::new(TableCost::new(TimeNs::from_millis(1)));
    // Goal so loose any LP meets it: maximal decrease pressure.
    let config = ControllerConfig::new(TimeNs::from_secs(3_600), 8)
        .initial_lp(4)
        .decrease(DecreasePolicy::ToMinimal);
    let mut auto = AutonomicSim::new(program, config, cost);
    auto.controller().with_estimates(|est| {
        for d in &muscles {
            est.init_duration(d.id, TimeNs::from_millis(1));
            if d.id.role == MuscleRole::Split {
                est.init_cardinality(d.id, 16.0);
            }
        }
    });
    let out = auto.run((1..=16).collect()).unwrap();
    assert_eq!(out.result, 136);
    assert!(auto.controller().current_lp() >= 1);
}

#[test]
fn zero_cardinality_splits_flow_through_the_autonomic_stack() {
    let program: Skel<Vec<i64>, i64> = map(
        |_: Vec<i64>| Vec::<Vec<i64>>::new(),
        seq(|v: Vec<i64>| v[0]),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let cost = Arc::new(TableCost::new(TimeNs::from_millis(1)));
    let config = ControllerConfig::new(TimeNs::from_millis(100), 4).initial_lp(1);
    let mut auto = AutonomicSim::new(program, config, cost);
    let first = auto.run(vec![]).unwrap();
    assert_eq!(first.result, 0);
    // Second run predicts with |fs| ≈ 0 — must not panic or stall.
    let second = auto.run(vec![]).unwrap();
    assert_eq!(second.result, 0);
}

#[test]
fn overdue_activities_do_not_break_estimation() {
    // A muscle that takes far longer than its estimate: the past-clamp
    // (tf = now) applies and the controller keeps functioning.
    let program: Skel<Vec<i64>, i64> = map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0]),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    );
    let muscles = program.node().collect_muscles();
    let cost = Arc::new(TableCost::new(TimeNs::from_secs(1)));
    let config = ControllerConfig::new(TimeNs::from_secs(2), 8).initial_lp(1);
    let mut auto = AutonomicSim::new(program, config, cost);
    auto.controller().with_estimates(|est| {
        for d in &muscles {
            // Wildly optimistic: everything "should" take 1ms.
            est.init_duration(d.id, TimeNs::from_millis(1));
            if d.id.role == MuscleRole::Split {
                est.init_cardinality(d.id, 4.0);
            }
        }
    });
    let out = auto.run((1..=4).collect()).unwrap();
    assert_eq!(out.result, 10);
}
