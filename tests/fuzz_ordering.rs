//! Seeded-ordering fuzzing of the adapt/offload decision stack.
//!
//! The simulator's `OrderingPolicy::SeededRandom` permutes only what is
//! genuinely unordered — scheduler events carrying the same virtual
//! timestamp — so each seed is one plausible concurrent schedule, and a
//! sweep over seeds is a concurrency fuzzer with none of the flakiness:
//! any failure names its seed, and `ASKEL_SIM_SEED=<seed>` replays it
//! bit-for-bit.
//!
//! Two acceptance scenarios run under every seed, twice each:
//!
//! * the skewed-cluster offload scenario (`tests/adaptive.rs`), and
//! * the remote-errors fallback-swap scenario
//!   (`tests/failure_injection.rs`).
//!
//! Per seed we assert the *order-independent* invariants — results equal
//! the sequential reference, exactly the poisoned items fail, at most one
//! fire per rule per safe point, the hysteresis-damped grain knob never
//! reverses inside its cooldown window — and the *replay* invariant: a
//! second run under the same seed reproduces the decision log, virtual
//! timestamps included, byte for byte.
//!
//! `ASKEL_SIM_FUZZ_SEEDS=<n>` overrides the sweep width (default 32);
//! `ASKEL_SIM_SEED=<seed>` narrows the sweep to that single seed.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use autonomic_skeletons::prelude::*;
use autonomic_skeletons::skeletons::KindTag;
use autonomic_skeletons::workloads::{GrainedSquareSum, OscillatingLoad};

/// The seeds to sweep: `ASKEL_SIM_SEED` narrows to one seed,
/// `ASKEL_SIM_FUZZ_SEEDS` sets the sweep width, default 32.
fn seeds() -> Vec<u64> {
    if let Some(seed) = std::env::var("ASKEL_SIM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        return vec![seed];
    }
    let count: u64 = std::env::var("ASKEL_SIM_FUZZ_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    (1..=count).collect()
}

/// The reproduction hint appended to every per-seed assertion message.
fn repro(seed: u64) -> String {
    format!("seed {seed} (set ASKEL_SIM_SEED={seed} to reproduce)")
}

/// At most one fire per rule per safe point: group the decision log by
/// virtual timestamp (safe points are the only places rules run, and each
/// safe point happens at one instant) and check rule names are unique
/// within each group.
fn assert_at_most_once_per_safe_point(decisions: &[(TimeNs, u64, String)], seed: u64) {
    let mut by_at: Vec<(TimeNs, Vec<&str>)> = Vec::new();
    for (at, _, rule) in decisions {
        match by_at.last_mut() {
            Some((t, rules)) if t == at => rules.push(rule),
            _ => by_at.push((*at, vec![rule])),
        }
    }
    for (at, rules) in &by_at {
        let mut uniq = rules.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(
            uniq.len(),
            rules.len(),
            "rule fired twice at one safe point ({at}): {rules:?} — {}",
            repro(seed)
        );
    }
}

/// Scenario A — the skewed-cluster offload acceptance scenario from
/// `tests/adaptive.rs`, parameterized over the ordering policy.
mod skewed {
    use super::*;

    pub const COOLDOWN: usize = 4;

    pub struct Run {
        /// `(at, version, rule)` — action strings are excluded because
        /// they embed process-global fresh `NodeId`s.
        pub decisions: Vec<(TimeNs, u64, String)>,
        pub provisions: Vec<(TimeNs, String, usize)>,
        pub outputs: Vec<i64>,
        pub grain_trace: Vec<(usize, usize)>,
        pub inputs: Vec<Vec<i64>>,
    }

    pub fn run_once(policy: OrderingPolicy) -> Run {
        let scenario = GrainedSquareSum::new(32);
        let load = OscillatingLoad::new(4, 160, 3);
        let items = load.inputs(18);
        let leaf = MuscleId::new(
            scenario.program.node().children()[0].id,
            MuscleRole::Execute,
        );
        let cost = PerMuscleCost::new(Arc::new(TableCost::new(TimeNs::from_millis(1)))).route(
            leaf,
            Arc::new(
                LinearCost::new(TimeNs::ZERO, TimeNs::from_millis(1))
                    .with_probe(|p| p.downcast_ref::<Vec<i64>>().map(Vec::len)),
            ),
        );
        let cluster = Cluster::new(vec![
            NodeSpec::local("edge", 1),
            NodeSpec::remote("hub", 4, TimeNs::from_millis(2)).with_speed(2.0),
        ])
        .with_capacity(1);
        let telemetry = cluster.telemetry();
        let mut sim = SimEngine::with_workers(Box::new(cluster), Arc::new(cost)).ordering(policy);

        let trigger = TriggerEngine::new(0.5);
        sim.registry().add_listener(trigger.clone());
        trigger.add_rule(
            RetuneGrain::new(
                Knob::from_shared("grain", Arc::clone(&scenario.grain)),
                leaf,
                TimeNs::from_millis(10),
            )
            .bounds(4, 256)
            .hysteresis(Hysteresis::new(COOLDOWN, 0.2)),
        );
        trigger.add_rule(
            Offload::new(&scenario.program, "hub", telemetry.clone()).water_marks(0.7, 0.2),
        );
        let lp_view = telemetry.clone();
        let reconf = Reconfigurator::new(
            Arc::clone(sim.registry()),
            sim.clock().clone(),
            trigger.clone(),
        )
        .lp_source(move || lp_view.capacity().max(1));
        let mut policy_prov = ProvisioningPolicy::new(0.8, 0.0).cooldown(3).announce_via(
            Arc::clone(sim.registry()),
            scenario.program.id(),
            KindTag::Map,
        );

        let mut vskel = VersionedSkel::new(&scenario.program);
        let clock = sim.clock().clone();
        let mut outputs = Vec::new();
        let mut grain_trace = Vec::new();
        for (k, input) in items.iter().enumerate() {
            let out = sim.run(vskel.skel(), input.clone()).expect("sim run");
            outputs.push(out.result);
            trigger.record_outcome(true);
            if let Some(capacity) = policy_prov.review(&telemetry, clock.now()) {
                sim.set_lp(capacity);
            }
            if reconf.apply(&mut vskel) > 0 {
                grain_trace.push((k, scenario.grain.load(Ordering::SeqCst)));
            }
        }
        Run {
            decisions: trigger
                .decision_log()
                .iter()
                .map(|d| (d.at, d.version, d.rule.clone()))
                .collect(),
            provisions: policy_prov
                .log()
                .iter()
                .filter(|r| r.action == ProvisionAction::Add)
                .map(|r| (r.at, r.node.clone(), r.capacity))
                .collect(),
            outputs,
            grain_trace,
            inputs: items,
        }
    }

    pub fn check_invariants(run: &Run, seed: u64) {
        // Results equal the sequential reference, whatever the schedule.
        for (k, input) in run.inputs.iter().enumerate() {
            assert_eq!(
                run.outputs[k],
                GrainedSquareSum::reference(input),
                "item {k} diverged — {}",
                repro(seed)
            );
        }
        assert_at_most_once_per_safe_point(&run.decisions, seed);
        // The hysteresis-damped grain knob never reverses direction
        // within its cooldown window (safe points = items here).
        let mut prev: Option<(usize, i64)> = None;
        let mut grain = 32i64;
        for &(item, value) in &run.grain_trace {
            let dir = (value as i64 - grain).signum();
            if let Some((last_item, last_dir)) = prev {
                if dir != last_dir {
                    assert!(
                        item - last_item >= COOLDOWN,
                        "grain reversed after {} items (cooldown {COOLDOWN}): {:?} — {}",
                        item - last_item,
                        run.grain_trace,
                        repro(seed)
                    );
                }
            }
            prev = Some((item, dir));
            grain = value as i64;
        }
    }
}

/// Scenario B — the remote-errors fallback-swap scenario from
/// `tests/failure_injection.rs`, parameterized over the ordering policy.
mod remote_errors {
    use super::*;

    const POISON: i64 = -999;

    fn build_map(robust: bool) -> Skel<Vec<i64>, i64> {
        map(
            |v: Vec<i64>| {
                let mid = (v.len() / 2).max(1).min(v.len());
                let (a, b) = v.split_at(mid);
                vec![a.to_vec(), b.to_vec()]
            },
            seq(move |chunk: Vec<i64>| {
                if !robust && chunk.contains(&POISON) {
                    panic!("remote node rejected a poisoned chunk");
                }
                chunk.iter().filter(|x| **x != POISON).sum::<i64>()
            }),
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        )
    }

    pub struct Run {
        pub outcomes: Vec<Result<i64, String>>,
        pub decisions: Vec<(TimeNs, u64, String)>,
        pub final_version: u64,
    }

    pub fn run_once(policy: OrderingPolicy) -> Run {
        let fragile = build_map(false);
        let robust = build_map(true);
        let cluster = Cluster::new(vec![
            NodeSpec::local("edge", 2),
            NodeSpec::remote("hub", 2, TimeNs::from_millis(5)),
        ]);
        let telemetry = cluster.telemetry();
        let cost = Arc::new(TableCost::new(TimeNs::from_millis(10)));
        let mut sim = SimEngine::with_workers(Box::new(cluster), cost).ordering(policy);

        let trigger = TriggerEngine::new(0.5);
        sim.registry().add_listener(trigger.clone());
        trigger.add_rule(Offload::new(&fragile, "hub", telemetry.clone()).water_marks(0.7, 0.2));
        trigger.add_rule(FallbackSwap::new(&fragile, &robust, 2).named("offload-back"));
        let reconf = Reconfigurator::new(
            Arc::clone(sim.registry()),
            sim.clock().clone(),
            trigger.clone(),
        )
        .lp_source(|| 4);

        let mut vskel = VersionedSkel::new(&fragile);
        let items: Vec<Vec<i64>> = (0..28)
            .map(|k| {
                if k == 3 || k == 4 {
                    vec![k, POISON, k + 1, k + 2]
                } else {
                    vec![k, k + 1, k + 2, k + 3]
                }
            })
            .collect();
        let mut outcomes = Vec::new();
        for input in &items {
            let result = match sim.run(vskel.skel(), input.clone()) {
                Ok(out) => Ok(out.result),
                Err(e) => Err(e.to_string()),
            };
            trigger.record_outcome(result.is_ok());
            outcomes.push(result);
            reconf.apply(&mut vskel);
        }
        Run {
            outcomes,
            decisions: trigger
                .decision_log()
                .into_iter()
                .map(|d| (d.at, d.version, d.rule))
                .collect(),
            final_version: vskel.version(),
        }
    }

    pub fn check_invariants(run: &Run, seed: u64) {
        // Exactly the two poisoned items fail — the fragile muscle panics
        // on poison wherever the schedule placed it — and every success
        // computes the reference sum. No item lost or duplicated.
        let errors: Vec<usize> = run
            .outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_err().then_some(i))
            .collect();
        assert_eq!(errors, vec![3, 4], "{:?} — {}", run.outcomes, repro(seed));
        for (k, outcome) in run.outcomes.iter().enumerate() {
            if let Ok(sum) = outcome {
                let expected: i64 = (k as i64..k as i64 + 4).sum();
                assert_eq!(*sum, expected, "item {k} — {}", repro(seed));
            }
        }
        // The error streak always swaps in the local fallback, whatever
        // the tie-break schedule did to the offload timing.
        assert!(
            run.decisions.iter().any(|(_, _, r)| r == "offload-back"),
            "{:?} — {}",
            run.decisions,
            repro(seed)
        );
        assert!(run.final_version >= 1, "{}", repro(seed));
        assert_at_most_once_per_safe_point(&run.decisions, seed);
    }
}

/// The sweep: both scenarios, every seed, run twice. Invariants hold
/// under every schedule; the second run replays the first bit-for-bit
/// (decision-log virtual timestamps included).
#[test]
fn seeded_ordering_sweep_preserves_invariants_and_replays() {
    for seed in seeds() {
        let policy = OrderingPolicy::SeededRandom(seed);

        let a = skewed::run_once(policy);
        skewed::check_invariants(&a, seed);
        let b = skewed::run_once(policy);
        assert_eq!(
            a.decisions,
            b.decisions,
            "skewed decisions must replay — {}",
            repro(seed)
        );
        assert_eq!(a.provisions, b.provisions, "{}", repro(seed));
        assert_eq!(a.outputs, b.outputs, "{}", repro(seed));
        assert_eq!(a.grain_trace, b.grain_trace, "{}", repro(seed));

        let a = remote_errors::run_once(policy);
        remote_errors::check_invariants(&a, seed);
        let b = remote_errors::run_once(policy);
        assert_eq!(
            a.decisions,
            b.decisions,
            "remote-errors decisions must replay — {}",
            repro(seed)
        );
        assert_eq!(a.outcomes, b.outcomes, "{}", repro(seed));
    }
}

/// Different seeds genuinely explore different schedules — otherwise the
/// fuzzer is vacuous. A single-slot fan-out makes the dispatch order
/// directly observable: all eight chunks become ready at the same virtual
/// instant, so the order they execute *is* the tie-break order.
/// `Deterministic` must give the historical LIFO order; seeds must
/// replay exactly and at least two seeds must disagree. (The invariant
/// assertions above are what must NOT vary across seeds.)
#[test]
fn seeds_actually_explore_distinct_schedules() {
    use std::sync::Mutex;

    fn dispatch_order(policy: OrderingPolicy) -> Vec<i64> {
        let order = Arc::new(Mutex::new(Vec::new()));
        let probe = Arc::clone(&order);
        let program: Skel<Vec<i64>, i64> = map(
            |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
            seq(move |v: Vec<i64>| {
                probe.lock().unwrap().push(v[0]);
                v[0]
            }),
            |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
        );
        let mut sim =
            SimEngine::new(1, Arc::new(TableCost::new(TimeNs::from_secs(1)))).ordering(policy);
        let out = sim.run(&program, (0..8).collect()).expect("sim run");
        assert_eq!(out.result, 28);
        let got = order.lock().unwrap().clone();
        got
    }

    assert_eq!(
        dispatch_order(OrderingPolicy::Deterministic),
        vec![7, 6, 5, 4, 3, 2, 1, 0],
        "Deterministic must keep the historical LIFO dispatch order"
    );
    let mut orders = Vec::new();
    for seed in seeds().into_iter().take(8) {
        let policy = OrderingPolicy::SeededRandom(seed);
        let a = dispatch_order(policy);
        let b = dispatch_order(policy);
        assert_eq!(a, b, "dispatch order must replay — {}", repro(seed));
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "{}", repro(seed));
        orders.push(a);
    }
    let first = &orders[0];
    assert!(
        orders.len() < 2 || orders.iter().any(|o| o != first),
        "every seed produced an identical dispatch order — the tie-break keys are not reaching the scheduler"
    );
}
