//! End-to-end reproduction criteria for the paper's §5 evaluation
//! (Figures 5–7), as defined in DESIGN.md: absolute numbers are
//! substrate-dependent, the *shape* must hold.

use askel_bench::{PaperScenarios, ScenarioParams};
use askel_skeletons::TimeNs;

fn testbed() -> PaperScenarios {
    PaperScenarios::new(ScenarioParams::default())
}

const GOAL_95: TimeNs = TimeNs(9_500_000_000);
const GOAL_105: TimeNs = TimeNs(10_500_000_000);

#[test]
fn sequential_baseline_matches_the_papers_12_5s() {
    let wct = testbed().sequential_wct();
    let secs = wct.as_secs_f64();
    assert!(
        (11.5..13.5).contains(&secs),
        "sequential WCT {secs:.2}s should be ≈12.5s"
    );
}

#[test]
fn fig5_cold_run_meets_the_goal_and_adapts_at_the_first_merge() {
    let testbed = testbed();
    let seq = testbed.sequential_wct();
    let s1 = testbed.run(GOAL_95, None);
    // Meets the goal (paper: 9.3s ≤ 9.5s).
    assert!(s1.wct <= GOAL_95, "S1 missed its goal: {}", s1.wct);
    // Clearly beats sequential.
    assert!(s1.wct < seq);
    // No adaptation can happen before the first merge (the gate needs all
    // estimates); the first decision lands right after it (paper: 7.6s).
    let first = s1.first_decision_at.expect("S1 must adapt");
    let first_s = first.as_secs_f64();
    assert!(
        (7.0..8.5).contains(&first_s),
        "first adaptation at {first_s:.2}s; paper: ≈7.6s"
    );
    // It actually parallelized.
    assert!(s1.peak_active >= 4, "peak {} too low", s1.peak_active);
}

#[test]
fn fig6_initialization_adapts_earlier_and_finishes_faster() {
    let testbed = testbed();
    let s1 = testbed.run(GOAL_95, None);
    let s2 = testbed.run(GOAL_95, Some(&s1.snapshot));
    // Adaptation at the end of the first split (paper: 6.4s) — before the
    // first merge, which is only possible thanks to initialization.
    let first = s2.first_decision_at.expect("S2 must adapt").as_secs_f64();
    assert!(
        (6.3..6.6).contains(&first),
        "S2 adapts at {first:.2}s; paper: 6.4s (end of the 6.4s split)"
    );
    assert!(s2.first_decision_at < s1.first_decision_at);
    // Faster end-to-end (paper: 8.4s vs 9.3s).
    assert!(
        s2.wct < s1.wct,
        "initialized {} must beat cold {}",
        s2.wct,
        s1.wct
    );
    assert!(s2.wct <= GOAL_95);
}

#[test]
fn fig7_looser_goal_uses_fewer_threads() {
    let testbed = testbed();
    let s1 = testbed.run(GOAL_95, None);
    let s3 = testbed.run(GOAL_105, None);
    assert!(s3.wct <= GOAL_105, "S3 missed its goal: {}", s3.wct);
    // More room ⇒ fewer threads (paper: 10 vs 17).
    assert!(
        s3.peak_active < s1.peak_active,
        "S3 peak {} must be below S1 peak {}",
        s3.peak_active,
        s1.peak_active
    );
    assert!(
        s3.peak_lp_target() < s1.peak_lp_target(),
        "S3 LP target {} must be below S1's {}",
        s3.peak_lp_target(),
        s1.peak_lp_target()
    );
    // And it should not finish before the tighter-goal run.
    assert!(s3.wct >= s1.wct);
}

#[test]
fn scenario_runs_are_deterministic() {
    let testbed = testbed();
    let a = testbed.run(GOAL_95, None);
    let b = testbed.run(GOAL_95, None);
    assert_eq!(a.wct, b.wct);
    assert_eq!(a.peak_active, b.peak_active);
    assert_eq!(a.decisions.len(), b.decisions.len());
    assert_eq!(a.distinct_tokens, b.distinct_tokens);
}

#[test]
fn timelines_start_single_threaded_during_the_file_read() {
    // "There is no need for more than one thread" while the first split
    // (the 6.4s file read) runs — no scenario may show >1 active before
    // 6.4s.
    let testbed = testbed();
    for out in [testbed.run(GOAL_95, None), testbed.run(GOAL_105, None)] {
        for p in &out.active_timeline {
            if p.at < TimeNs::from_millis(6_400) {
                assert!(
                    p.active <= 1,
                    "{} active threads at {} (before the split ends)",
                    p.active,
                    p.at
                );
            }
        }
    }
}

#[test]
fn snapshot_round_trip_preserves_behavior() {
    let testbed = testbed();
    let s1 = testbed.run(GOAL_95, None);
    // Serialize + parse the snapshot; the initialized run must behave
    // identically to one initialized from the in-memory snapshot.
    let json = s1.snapshot.to_json();
    let parsed = askel_core::Snapshot::from_json(&json).unwrap();
    let a = testbed.run(GOAL_95, Some(&s1.snapshot));
    let b = testbed.run(GOAL_95, Some(&parsed));
    assert_eq!(a.wct, b.wct);
    assert_eq!(a.decisions.len(), b.decisions.len());
}
