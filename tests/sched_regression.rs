//! Pinned regression: the discrete-event scheduler under
//! `OrderingPolicy::Deterministic` reproduces the pre-refactor
//! simulator's behaviour **byte for byte** on the paper's §5 scenarios.
//!
//! The constants below were captured on the last pre-refactor revision
//! (the linear-scan, implicit-ordering scheduler): the sequential WCT,
//! and for each goal scenario the full decision log — virtual
//! timestamps, LP transitions, reasons and predicted WCTs — plus the
//! run's WCT, peak activity and final LP. Any drift in event ordering,
//! tie-breaking, slot placement or virtual-time accounting shows up here
//! as an exact-value mismatch.

use askel_bench::{PaperScenarios, ScenarioParams};
use autonomic_skeletons::prelude::*;

const GOAL_95: TimeNs = TimeNs(9_500_000_000);
const GOAL_105: TimeNs = TimeNs(10_500_000_000);

/// `(at, from_lp, to_lp, reason, predicted_wct)` — every `Decision` field.
type Pinned = (u64, usize, usize, DecisionReason, u64);

fn pin(decisions: &[autonomic_skeletons::core::Decision]) -> Vec<Pinned> {
    decisions
        .iter()
        .map(|d| (d.at.0, d.from_lp, d.to_lp, d.reason, d.predicted_wct.0))
        .collect()
}

#[test]
fn deterministic_ordering_reproduces_pre_refactor_decision_logs() {
    // The pinned values are only valid under the default deterministic
    // ordering; a fuzz seed in the environment intentionally changes the
    // schedule, so this regression does not apply.
    if std::env::var(autonomic_skeletons::sim::sched::SEED_ENV).is_ok() {
        eprintln!(
            "skipping: {} is set",
            autonomic_skeletons::sim::sched::SEED_ENV
        );
        return;
    }

    let scenarios = PaperScenarios::new(ScenarioParams::default());

    // The sequential baseline (the paper's 12.5 s), to the nanosecond.
    assert_eq!(scenarios.sequential_wct(), TimeNs(12_643_125_706));

    // Goal 9.5 s, cold estimators (Fig. 5).
    let g95 = scenarios.run(GOAL_95, None);
    assert_eq!(g95.wct, TimeNs(8_866_328_052));
    assert_eq!(g95.peak_active, 8);
    assert_eq!(g95.final_lp, 8);
    assert_eq!(g95.distinct_tokens, 1016);
    assert_eq!(
        pin(&g95.decisions),
        vec![(
            7_717_363_817,
            1,
            8,
            DecisionReason::RaiseToMeetGoal,
            8_941_730_887
        )]
    );

    // Goal 10.5 s, cold estimators (Fig. 7): a raise then a decrease.
    let g105 = scenarios.run(GOAL_105, None);
    assert_eq!(g105.wct, TimeNs(9_278_700_681));
    assert_eq!(g105.peak_active, 4);
    assert_eq!(g105.final_lp, 2);
    assert_eq!(g105.distinct_tokens, 1016);
    assert_eq!(
        pin(&g105.decisions),
        vec![
            (
                7_717_363_817,
                1,
                4,
                DecisionReason::RaiseToMeetGoal,
                9_128_045_006
            ),
            (8_640_089_911, 4, 2, DecisionReason::Decrease, 9_291_779_198),
        ]
    );

    // Goal 9.5 s with estimators initialized from the first run's
    // snapshot (Fig. 6): adaptation starts at the very first safe point
    // after the outer split (6.4 s), not after the first merge.
    let g95init = scenarios.run(GOAL_95, Some(&g95.snapshot));
    assert_eq!(g95init.wct, TimeNs(7_947_593_244));
    assert_eq!(g95init.peak_active, 5);
    assert_eq!(
        pin(&g95init.decisions),
        vec![
            (
                6_400_000_000,
                1,
                6,
                DecisionReason::RaiseToMeetGoal,
                7_771_183_943
            ),
            (7_296_682_231, 6, 3, DecisionReason::Decrease, 8_088_884_201),
        ]
    );
}
