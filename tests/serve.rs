//! Serve-layer integration: cross-tenant estimator warm-start,
//! latency-aware admission pricing, and multi-tenant correctness under
//! random interleaved feeds.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use askel_adapt::TriggerEngine;
use askel_core::{predictive_wct, EstimatorTable};
use askel_engine::Engine;
use askel_serve::{Admission, AdmissionPolicy, ServeRegistry};
use askel_skeletons::{map, pipe, seq, MuscleRole, Skel, TimeNs};

/// The shared tenant program: square every element in parallel, sum.
fn fan() -> Skel<Vec<i64>, i64> {
    map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0] * v[0]),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    )
}

/// A structurally different program over the same types.
fn chain() -> Skel<Vec<i64>, i64> {
    pipe(
        seq(|v: Vec<i64>| v.into_iter().map(|x| x * x).collect::<Vec<i64>>()),
        seq(|v: Vec<i64>| v.into_iter().sum::<i64>()),
    )
}

#[test]
fn tenant_b_warm_starts_from_tenant_a_history() {
    let engine = Engine::new(2);
    let mut registry: ServeRegistry<Vec<i64>, i64> = ServeRegistry::new(&engine);

    // Tenant A builds estimator history through its routed events.
    let trig_a = TriggerEngine::new(0.5);
    let a = registry.register_adaptive(&fan(), trig_a.clone());
    for n in 0..12i64 {
        registry.feed(a, (0..=n).collect());
    }
    registry.quiesce();
    registry.drain_cycle(); // publish A's history to the shared pool
    assert!(registry.shared_estimators().structures() >= 1);

    let lp = engine.pool().target_workers();
    // A cold trigger on the same structure would forecast nothing...
    let cold = TriggerEngine::new(0.5);
    let cold_skel = fan();
    assert!(
        cold.read_estimates(|est| predictive_wct(est, cold_skel.node(), lp))
            .is_none(),
        "an unwarmed tenant's forecast gate is closed"
    );

    // ...but tenant B — an independently built structural twin, sharing
    // no NodeIds with A — forecasts before running a single item.
    let trig_b = TriggerEngine::new(0.5);
    let b_skel = fan();
    assert_ne!(b_skel.id(), cold_skel.id());
    let _b = registry.register_adaptive(&b_skel, trig_b.clone());
    let forecast = trig_b.read_estimates(|est| predictive_wct(est, b_skel.node(), lp));
    assert!(
        forecast.is_some(),
        "warm-started tenant forecasts with zero items of its own"
    );

    // A structurally different tenant shares nothing.
    let trig_c = TriggerEngine::new(0.5);
    let c_skel = chain();
    let _c = registry.register_adaptive(&c_skel, trig_c.clone());
    assert!(
        trig_c
            .read_estimates(|est| predictive_wct(est, c_skel.node(), lp))
            .is_none(),
        "a structurally different skeleton must not inherit history"
    );
    assert!(!trig_c.read_estimates(|est| est.covers(&c_skel.node().collect_muscles())));

    engine.shutdown();
}

/// Seeds `table` with `per_muscle` for every muscle of `program` (and a
/// neutral cardinality of 1 for splits), so `estimated_cost` prices the
/// structure at `per_muscle × muscle count`.
fn priced_table(program: &Skel<Vec<i64>, i64>, per_muscle: TimeNs) -> EstimatorTable {
    let mut t = EstimatorTable::new(0.5);
    for m in program.node().collect_muscles() {
        t.init_duration(m.id, per_muscle);
        if m.id.role == MuscleRole::Split {
            t.init_cardinality(m.id, 1.0);
        }
    }
    t
}

/// Gate 3 end to end: with the shared pool's queue held at depth > 0 by
/// a blocked tenant, a *cheap* tenant keeps submitting while an
/// *expensive* structural stranger queues at the same depth — and a
/// tenant whose structure has no pooled history is not priced at all
/// (the gate degrades to the static quotas).
#[test]
fn latency_gate_prices_expensive_tenants_and_degrades_without_estimates() {
    // One worker, so a single blocked item pins the pool and everything
    // behind it measures as queue depth.
    let engine = Engine::new(1);
    let policy = AdmissionPolicy::default().max_queue_cost(1_000_000); // 1 ms·tasks
    let mut registry: ServeRegistry<Vec<i64>, i64> =
        ServeRegistry::new(&engine).with_policy(policy);

    // Price the two structures through the shared pool before their
    // tenants exist: chain() at ~2 µs/item, fan() at ~30 ms/item.
    let cheap_program = chain();
    let expensive_program = fan();
    registry.shared_estimators().absorb(
        cheap_program.node(),
        &priced_table(&cheap_program, TimeNs(1_000)),
    );
    registry.shared_estimators().absorb(
        expensive_program.node(),
        &priced_table(&expensive_program, TimeNs::from_millis(10)),
    );

    // The blocker parks the only worker until released; its structure
    // (a bare seq) has no pooled history, so it is never priced.
    let (tx, rx) = mpsc::channel::<()>();
    let rx = Arc::new(Mutex::new(rx));
    let gate = Arc::clone(&rx);
    let blocker_program = seq(move |v: Vec<i64>| {
        gate.lock().unwrap().recv().ok();
        v.into_iter().sum::<i64>()
    });
    let blocker = registry.register(&blocker_program);
    for _ in 0..5 {
        assert_eq!(
            registry.feed(blocker, vec![1]),
            Admission::Submitted,
            "the unpriced blocker degrades to the static quotas"
        );
    }
    // ≥ 4 items now sit queued behind the blocked worker.

    let cheap = registry.register(&cheap_program);
    let expensive = registry.register(&expensive_program);
    assert!(registry.stats(cheap).unwrap().est_cost_ns.is_some());
    assert!(registry.stats(expensive).unwrap().est_cost_ns.is_some());
    assert!(registry.stats(blocker).unwrap().est_cost_ns.is_none());

    // Same depth, opposite verdicts: depth × 2 µs clears the 1 ms·tasks
    // bound, depth × 30 ms does not.
    assert_eq!(registry.feed(cheap, vec![1, 2, 3]), Admission::Submitted);
    assert_eq!(registry.feed(expensive, vec![1, 2, 3]), Admission::Queued);

    // Release the pool: the queued item dispatches once depth falls, and
    // every admitted item completes.
    for _ in 0..5 {
        tx.send(()).unwrap();
    }
    registry.quiesce();
    assert_eq!(
        registry.take_ready(cheap).len() + registry.take_ready(expensive).len(),
        2,
        "queued-by-pricing items still run once the queue clears"
    );
    engine.shutdown();
}

proptest! {
    /// The pricing predicate itself: admitted ⇔ depth × cost ≤ bound,
    /// monotone in both depth and cost, and *always* admitting when the
    /// tenant is unpriced or the bound is unset (degrade-to-static).
    #[test]
    fn cost_gate_is_monotone_and_degrades_without_estimates(
        bound in 1u64..1_000_000_000,
        cost in 1u64..1_000_000_000,
        depth in 0usize..100_000,
    ) {
        let p = AdmissionPolicy::default().max_queue_cost(bound);
        let admitted = p.cost_room(depth, Some(cost));
        prop_assert_eq!(admitted, (depth as u64) * cost <= bound);
        if admitted {
            // Monotone: shallower queues and cheaper tenants stay in.
            if depth > 0 {
                prop_assert!(p.cost_room(depth - 1, Some(cost)));
            }
            prop_assert!(p.cost_room(depth, Some(cost.max(2) - 1)));
        }
        // No estimate / no bound: the gate must never reject.
        prop_assert!(p.cost_room(depth, None));
        prop_assert!(AdmissionPolicy::default().cost_room(depth, Some(cost)));
    }
}

/// One op in an interleaved schedule: which tenant, and the items it
/// feeds (1 item = `feed`, several = `feed_batch`).
#[derive(Clone, Debug)]
struct Op {
    tenant: usize,
    items: Vec<Vec<i64>>,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0usize..3,
        proptest::collection::vec(proptest::collection::vec(-50i64..50, 1..4), 1..4),
    )
        .prop_map(|(tenant, items)| Op { tenant, items })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn interleaved_tenants_match_their_sequential_references(
        ops in proptest::collection::vec(op_strategy(), 1..24),
        quota in 1usize..6,
    ) {
        let engine = Engine::new(2);
        let policy = AdmissionPolicy::default().max_in_flight(quota);
        let mut registry: ServeRegistry<Vec<i64>, i64> =
            ServeRegistry::new(&engine).with_policy(policy);
        let programs = [fan(), chain(), fan()];
        let tenants: Vec<_> = programs.iter().map(|p| registry.register(p)).collect();

        // Interleave feeds across tenants; record each tenant's schedule.
        let mut fed: Vec<Vec<Vec<i64>>> = vec![Vec::new(); tenants.len()];
        for op in &ops {
            fed[op.tenant].extend(op.items.iter().cloned());
            if op.items.len() == 1 {
                registry.feed(tenants[op.tenant], op.items[0].clone());
            } else {
                registry.feed_batch(tenants[op.tenant], op.items.clone());
            }
        }
        registry.quiesce();

        // Every tenant's results equal its own sequential reference, in
        // its own feed order — no cross-tenant bleed, no reordering.
        for (i, &t) in tenants.iter().enumerate() {
            let got: Vec<i64> = registry
                .take_ready(t)
                .into_iter()
                .map(|r| r.expect("no failures in this workload"))
                .collect();
            let expected: Vec<i64> = fed[i]
                .iter()
                .map(|item| programs[i].apply(item.clone()))
                .collect();
            prop_assert_eq!(got, expected, "tenant {} diverged", t);
        }
        engine.shutdown();
    }
}
