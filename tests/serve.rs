//! Serve-layer integration: cross-tenant estimator warm-start and
//! multi-tenant correctness under random interleaved feeds.

use proptest::prelude::*;

use askel_adapt::TriggerEngine;
use askel_core::predictive_wct;
use askel_engine::Engine;
use askel_serve::{AdmissionPolicy, ServeRegistry};
use askel_skeletons::{map, pipe, seq, Skel};

/// The shared tenant program: square every element in parallel, sum.
fn fan() -> Skel<Vec<i64>, i64> {
    map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0] * v[0]),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    )
}

/// A structurally different program over the same types.
fn chain() -> Skel<Vec<i64>, i64> {
    pipe(
        seq(|v: Vec<i64>| v.into_iter().map(|x| x * x).collect::<Vec<i64>>()),
        seq(|v: Vec<i64>| v.into_iter().sum::<i64>()),
    )
}

#[test]
fn tenant_b_warm_starts_from_tenant_a_history() {
    let engine = Engine::new(2);
    let mut registry: ServeRegistry<Vec<i64>, i64> = ServeRegistry::new(&engine);

    // Tenant A builds estimator history through its routed events.
    let trig_a = TriggerEngine::new(0.5);
    let a = registry.register_adaptive(&fan(), trig_a.clone());
    for n in 0..12i64 {
        registry.feed(a, (0..=n).collect());
    }
    registry.quiesce();
    registry.drain_cycle(); // publish A's history to the shared pool
    assert!(registry.shared_estimators().structures() >= 1);

    let lp = engine.pool().target_workers();
    // A cold trigger on the same structure would forecast nothing...
    let cold = TriggerEngine::new(0.5);
    let cold_skel = fan();
    assert!(
        cold.read_estimates(|est| predictive_wct(est, cold_skel.node(), lp))
            .is_none(),
        "an unwarmed tenant's forecast gate is closed"
    );

    // ...but tenant B — an independently built structural twin, sharing
    // no NodeIds with A — forecasts before running a single item.
    let trig_b = TriggerEngine::new(0.5);
    let b_skel = fan();
    assert_ne!(b_skel.id(), cold_skel.id());
    let _b = registry.register_adaptive(&b_skel, trig_b.clone());
    let forecast = trig_b.read_estimates(|est| predictive_wct(est, b_skel.node(), lp));
    assert!(
        forecast.is_some(),
        "warm-started tenant forecasts with zero items of its own"
    );

    // A structurally different tenant shares nothing.
    let trig_c = TriggerEngine::new(0.5);
    let c_skel = chain();
    let _c = registry.register_adaptive(&c_skel, trig_c.clone());
    assert!(
        trig_c
            .read_estimates(|est| predictive_wct(est, c_skel.node(), lp))
            .is_none(),
        "a structurally different skeleton must not inherit history"
    );
    assert!(!trig_c.read_estimates(|est| est.covers(&c_skel.node().collect_muscles())));

    engine.shutdown();
}

/// One op in an interleaved schedule: which tenant, and the items it
/// feeds (1 item = `feed`, several = `feed_batch`).
#[derive(Clone, Debug)]
struct Op {
    tenant: usize,
    items: Vec<Vec<i64>>,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0usize..3,
        proptest::collection::vec(proptest::collection::vec(-50i64..50, 1..4), 1..4),
    )
        .prop_map(|(tenant, items)| Op { tenant, items })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn interleaved_tenants_match_their_sequential_references(
        ops in proptest::collection::vec(op_strategy(), 1..24),
        quota in 1usize..6,
    ) {
        let engine = Engine::new(2);
        let policy = AdmissionPolicy::default().max_in_flight(quota);
        let mut registry: ServeRegistry<Vec<i64>, i64> =
            ServeRegistry::new(&engine).with_policy(policy);
        let programs = [fan(), chain(), fan()];
        let tenants: Vec<_> = programs.iter().map(|p| registry.register(p)).collect();

        // Interleave feeds across tenants; record each tenant's schedule.
        let mut fed: Vec<Vec<Vec<i64>>> = vec![Vec::new(); tenants.len()];
        for op in &ops {
            fed[op.tenant].extend(op.items.iter().cloned());
            if op.items.len() == 1 {
                registry.feed(tenants[op.tenant], op.items[0].clone());
            } else {
                registry.feed_batch(tenants[op.tenant], op.items.clone());
            }
        }
        registry.quiesce();

        // Every tenant's results equal its own sequential reference, in
        // its own feed order — no cross-tenant bleed, no reordering.
        for (i, &t) in tenants.iter().enumerate() {
            let got: Vec<i64> = registry
                .take_ready(t)
                .into_iter()
                .map(|r| r.expect("no failures in this workload"))
                .collect();
            let expected: Vec<i64> = fed[i]
                .iter()
                .map(|item| programs[i].apply(item.clone()))
                .collect();
            prop_assert_eq!(got, expected, "tenant {} diverged", t);
        }
        engine.shutdown();
    }
}
