//! Sharded-serve integration: per-tenant correctness with concurrent
//! ingress threads and concurrent shard drivers, including detach under
//! a live drain.

use proptest::prelude::*;

use askel_engine::Engine;
use askel_serve::{Admission, AdmissionPolicy, RejectReason, ShardedServe};
use askel_skeletons::{map, pipe, seq, Skel};

/// The shared tenant program: square every element in parallel, sum.
fn fan() -> Skel<Vec<i64>, i64> {
    map(
        |v: Vec<i64>| v.into_iter().map(|x| vec![x]).collect::<Vec<_>>(),
        seq(|v: Vec<i64>| v[0] * v[0]),
        |parts: Vec<i64>| parts.into_iter().sum::<i64>(),
    )
}

/// A structurally different program over the same types.
fn chain() -> Skel<Vec<i64>, i64> {
    pipe(
        seq(|v: Vec<i64>| v.into_iter().map(|x| x * x).collect::<Vec<i64>>()),
        seq(|v: Vec<i64>| v.into_iter().sum::<i64>()),
    )
}

const TENANTS: usize = 6;
const INGRESS_THREADS: usize = 3;

/// One op in an interleaved schedule, applied by the ingress thread
/// that owns the op's tenant (so each tenant sees a well-defined feed
/// order while ops on *other* tenants race on other threads).
#[derive(Clone, Debug)]
enum OpKind {
    Feed(Vec<i64>),
    Batch(Vec<Vec<i64>>),
    Detach,
}

fn op_strategy() -> impl Strategy<Value = (usize, OpKind)> {
    let item = proptest::collection::vec(-50i64..50, 1..4);
    (
        0usize..TENANTS,
        prop_oneof![
            6 => item.clone().prop_map(OpKind::Feed),
            3 => proptest::collection::vec(item, 2..5).prop_map(OpKind::Batch),
            1 => Just(OpKind::Detach),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// Six tenants over four shard drivers, fed from three concurrent
    /// ingress threads with random feed/feed_batch/detach interleavings:
    /// every tenant's harvested results equal its sequential reference —
    /// the items it fed before its detach, applied in feed order.
    #[test]
    fn concurrent_shards_match_sequential_references(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let engine = Engine::new(2);
        let serve: ShardedServe<Vec<i64>, i64> =
            ShardedServe::new(&engine, 4, AdmissionPolicy::default());
        let programs: Vec<Skel<Vec<i64>, i64>> =
            (0..TENANTS).map(|i| if i % 2 == 0 { fan() } else { chain() }).collect();
        let tenants: Vec<_> = programs.iter().map(|p| serve.register(p)).collect();

        // Each tenant's sequential reference: the items fed before its
        // detach (feeds after a detach are rejected as unknown).
        let mut expected: Vec<Vec<i64>> = vec![Vec::new(); TENANTS];
        let mut detached = [false; TENANTS];
        for (tenant, kind) in &ops {
            match kind {
                OpKind::Feed(item) if !detached[*tenant] => {
                    expected[*tenant].push(programs[*tenant].apply(item.clone()));
                }
                OpKind::Batch(items) if !detached[*tenant] => {
                    for item in items {
                        expected[*tenant].push(programs[*tenant].apply(item.clone()));
                    }
                }
                OpKind::Detach => detached[*tenant] = true,
                _ => {}
            }
        }

        // Partition ops by owning ingress thread (tenant % threads), in
        // order — each tenant's schedule stays sequential on its owner
        // while the owners and the four shard drivers all race.
        let mut lanes: Vec<Vec<(usize, OpKind)>> = vec![Vec::new(); INGRESS_THREADS];
        for op in ops {
            lanes[op.0 % INGRESS_THREADS].push(op);
        }
        let harvested: Vec<Vec<Vec<i64>>> = std::thread::scope(|s| {
            let handles: Vec<_> = lanes
                .into_iter()
                .map(|lane| {
                    let serve = &serve;
                    let tenants = &tenants;
                    s.spawn(move || {
                        let mut got: Vec<Vec<i64>> = vec![Vec::new(); TENANTS];
                        for (tenant, kind) in lane {
                            let id = tenants[tenant];
                            match kind {
                                OpKind::Feed(item) => {
                                    serve.feed(id, item);
                                }
                                OpKind::Batch(items) => {
                                    serve.feed_batch(id, items);
                                }
                                OpKind::Detach => {
                                    if let Some(results) = serve.detach(id) {
                                        got[tenant]
                                            .extend(results.into_iter().map(|r| r.unwrap()));
                                    }
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        serve.quiesce();
        for (i, &t) in tenants.iter().enumerate() {
            // A detached tenant's results came back from detach (on its
            // owning ingress thread); a live tenant's are harvested now.
            let mut got: Vec<i64> = harvested.iter().flat_map(|lane| lane[i].clone()).collect();
            got.extend(serve.take_ready(t).into_iter().map(|r| r.unwrap()));
            prop_assert_eq!(got, expected[i].clone(), "tenant {} diverged", i);
        }
        serve.join();
        engine.shutdown();
    }
}

/// Detaching a tenant while its shard's driver is actively draining its
/// backlog loses nothing: every admitted item's result comes back, in
/// submission order, and later feeds are rejected as unknown.
#[test]
fn detach_while_driver_is_draining_loses_nothing() {
    let engine = Engine::new(2);
    // Quota 1 + deep backlog: the driver dispatches one item per cycle,
    // so the backlog drains gradually while we detach mid-flight.
    let policy = AdmissionPolicy::default().max_in_flight(1).max_backlog(512);
    let serve: ShardedServe<i64, i64> = ShardedServe::new(&engine, 4, policy);
    let t = serve.register(&seq(|x: i64| x * 3));
    let out = serve.feed_batch(t, (0..200).collect());
    assert_eq!(out.submitted + out.queued, 200, "nothing shed");
    // Let the driver make some progress, then yank the tenant out from
    // under it.
    while serve.stats(t).map(|s| s.completed).unwrap_or(0) == 0 {
        std::thread::yield_now();
    }
    let results = serve.detach(t).expect("tenant was live");
    let got: Vec<i64> = results.into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(got, (0..200).map(|x| x * 3).collect::<Vec<_>>());
    assert_eq!(
        serve.feed(t, 7),
        Admission::Rejected(RejectReason::UnknownTenant),
        "a detached tenant is gone"
    );
    assert_eq!(serve.detach(t), None, "second detach finds nothing");
    serve.quiesce();
    serve.join();
    engine.shutdown();
}
