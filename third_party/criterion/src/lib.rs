//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the API subset the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], [`criterion_group!`] and [`criterion_main!`] — with
//! plain wall-clock timing instead of criterion's statistics. Each bench
//! warms up briefly, then reports the mean iteration time over a fixed
//! time budget to stdout.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench driver (upstream's `Criterion`).
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `CRITERION_MEASUREMENT_TIME_MS` overrides the per-benchmark
        // time budget (shim extension). CI's bench smoke job sets it to
        // 0: the budget check runs after the first timed call, so every
        // benchmark executes exactly one measured iteration — enough to
        // prove the bench builds and runs without burning CI minutes.
        let measurement_time = std::env::var("CRITERION_MEASUREMENT_TIME_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_millis(300));
        Criterion { measurement_time }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.measurement_time);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            measurement_time: None,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    /// Group-scoped override; dropped with the group, as upstream does.
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for upstream compatibility; the shim's time budget makes
    /// sample counts moot.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement time for this group only.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    fn budget(&self) -> Duration {
        self.measurement_time
            .unwrap_or(self.criterion.measurement_time)
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let mut b = Bencher::new(self.budget());
        f(&mut b);
        b.report(&label);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let mut b = Bencher::new(self.budget());
        f(&mut b, input);
        b.report(&label);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark's identifier: function name plus parameter rendering.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            rendered: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            rendered: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id in this shim.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.rendered
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Times closures (upstream's `Bencher`).
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            budget,
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Runs `routine` repeatedly within the time budget and records the
    /// mean iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up + calibration: one untimed call.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    fn report(&self, label: &str) {
        if self.iters == 0 {
            println!("{label:<50} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() / self.iters as u128;
        println!(
            "{label:<50} {:>12} ns/iter ({} iters in {:?})",
            per_iter, self.iters, self.elapsed
        );
    }
}

/// Bundles bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
