//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim reproduces the parking_lot API shape the workspace uses —
//! [`Mutex::lock`] / [`RwLock::read`] / [`RwLock::write`] returning
//! guards directly (no `Result`), and [`Condvar`] waiting on `&mut`
//! guards — on top of `std::sync`. Poisoning is neutralized the way
//! parking_lot semantics demand: a panic while holding a lock does not
//! wedge later acquisitions.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`]; holds the guard in an `Option` so
/// [`Condvar`] can temporarily release it through `&mut`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// A readers–writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Whether a timed wait returned because time ran out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable operating on [`MutexGuard`]s in place.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and waits for a
    /// notification; the lock is reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Like [`wait`](Condvar::wait), but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present before wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!((*a, *b), (5, 5));
        drop((a, b));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiters() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(t.join().unwrap());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = lock.lock();
        let res = cv.wait_for(&mut guard, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn poisoned_locks_stay_usable() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a holder panicked");
    }
}
