//! `any::<T>()` — the canonical full-range strategy for a type.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range generation strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, magnitude-varied: good enough for tests.
        let mantissa = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let exp = (rng.next_u64() % 61) as i32 - 30;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mantissa * 2f64.powi(exp)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u32_spreads_over_the_range() {
        let mut rng = TestRng::from_seed(11);
        let s = any::<u32>();
        let mut high = 0u32;
        let mut low = u32::MAX;
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            high = high.max(v);
            low = low.min(v);
        }
        assert!(high > u32::MAX / 2);
        assert!(low < u32::MAX / 2);
    }
}
