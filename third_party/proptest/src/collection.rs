//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Lengths a collection strategy may produce (inclusive bounds).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s whose elements come from `element` and whose lengths
/// fall in `size` (an exact `usize` or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_seed(5);
        let exact = vec(0u32..5, 7usize);
        for _ in 0..50 {
            assert_eq!(exact.generate(&mut rng).len(), 7);
        }
        let ranged = vec(0u32..5, 0..3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = ranged.generate(&mut rng);
            assert!(v.len() < 3);
            seen[v.len()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
