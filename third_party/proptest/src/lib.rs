//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim implements the subset of proptest the workspace's property tests
//! use: composable [`strategy::Strategy`] values (ranges, tuples,
//! [`strategy::Just`], [`arbitrary::any`], [`collection::vec`],
//! `prop_map` / `prop_flat_map` / `prop_recursive` / `prop_oneof!`) and
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Semantics match upstream where the tests can observe them — each
//! `#[test]` runs `ProptestConfig::cases` generated cases and fails with
//! the offending inputs' `Debug` rendering — except that failing cases
//! are **not shrunk** and generation streams differ from upstream.
//! Deterministic per test unless `PROPTEST_RNG_SEED` overrides the seed.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the property tests import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __runner = $crate::test_runner::TestRunner::new($cfg);
                let __strats = ($($strat,)+);
                for __case in 0..__runner.cases() {
                    let mut __rng = __runner.rng_for(stringify!($name), __case);
                    let __values =
                        $crate::strategy::Strategy::generate(&__strats, &mut __rng);
                    let __debug = format!("{:?}", __values);
                    let ($($pat,)+) = __values;
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            __case,
                            __runner.cases(),
                            e,
                            __debug,
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform (or `weight =>`-weighted) choice among strategies of one value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($arm)),)+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm),)+
        ])
    };
}

/// Asserts inside a `proptest!` body, reporting the generated inputs on
/// failure instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "{}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`, both: `{:?}`",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod macro_tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    static FAIL_CASES: AtomicUsize = AtomicUsize::new(0);
    static SEEN: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    proptest! {
        #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

        // Meta attributes pass through; the runner really loops and
        // reports the failing case index.
        #[test]
        #[should_panic(expected = "failed at case 5")]
        fn failure_reports_the_case_index(x in 0u64..1000) {
            let _ = x;
            let case = FAIL_CASES.fetch_add(1, Ordering::SeqCst);
            prop_assert!(case < 5, "boom at case {case}");
        }

        #[test]
        fn tuple_patterns_and_multiple_args((a, b) in (0u32..10, 10u32..20), c in 0usize..3) {
            prop_assert!(a < 10);
            prop_assert!((10..20).contains(&b));
            prop_assert!(c < 3);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn generated_values_vary_across_cases(x in 0u64..u64::MAX) {
            let mut seen = SEEN.lock().unwrap();
            seen.push(x);
            if seen.len() == 10 {
                let mut unique = seen.clone();
                unique.sort_unstable();
                unique.dedup();
                prop_assert!(unique.len() > 8, "only {} distinct draws", unique.len());
            }
        }
    }
}
