//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim implements the subset of proptest the workspace's property tests
//! use: composable [`strategy::Strategy`] values (ranges, tuples,
//! [`strategy::Just`], [`arbitrary::any`], [`collection::vec`],
//! `prop_map` / `prop_flat_map` / `prop_recursive` / `prop_oneof!`) and
//! the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Semantics match upstream where the tests can observe them — each
//! `#[test]` runs `ProptestConfig::cases` generated cases, **shrinks** a
//! failing case, and fails with the minimal counterexample's `Debug`
//! rendering. Shrinking is draw-level (Hypothesis-style): the RNG
//! records its raw `u64` draws, and the shrinker replays mutated logs,
//! zeroing and halving draws toward zero (bounded by
//! `ProptestConfig::max_shrink_iters`). Because every strategy maps
//! draws to values monotonically, this shortens collections, lowers
//! integers and picks earlier `prop_oneof!` arms while always staying
//! inside the strategies' constraints — so pool/engine property
//! failures print a minimal schedule instead of a full random `Debug`
//! dump. Body panics (plain `assert!`s) shrink the same way as
//! `prop_assert!` failures; each shrink attempt re-runs the body, so
//! expect repeated panic hook output on the way to the minimal case.
//! Generation streams differ from upstream. Deterministic per test
//! unless `PROPTEST_RNG_SEED` overrides the seed.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the property tests import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            // The immediately-called closure gives `prop_assert!` its
            // early-`return` semantics; clippy flags the pattern.
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let __config = $cfg;
                let __runner = $crate::test_runner::TestRunner::new(__config.clone());
                let __strats = ($($strat,)+);
                // Runs one case against `rng` (fresh or replaying):
                // generates inputs, runs the body, and maps body panics
                // to failures too so they shrink like `prop_assert!`s.
                let mut __run_case = |__rng: &mut $crate::test_runner::TestRng| -> (
                    ::core::result::Result<(), $crate::test_runner::TestCaseError>,
                    ::std::string::String,
                ) {
                    let __values =
                        $crate::strategy::Strategy::generate(&__strats, __rng);
                    let __debug = format!("{:?}", __values);
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            let ($($pat,)+) = __values;
                            let __r: ::core::result::Result<
                                (),
                                $crate::test_runner::TestCaseError,
                            > = (|| {
                                $body
                                ::core::result::Result::Ok(())
                            })();
                            __r
                        }),
                    );
                    let __result = match __outcome {
                        ::core::result::Result::Ok(r) => r,
                        ::core::result::Result::Err(p) => ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError(
                                $crate::__panic_payload_message(p.as_ref()),
                            ),
                        ),
                    };
                    (__result, __debug)
                };
                for __case in 0..__runner.cases() {
                    let mut __rng = __runner.rng_for(stringify!($name), __case);
                    let (__result, __debug) = __run_case(&mut __rng);
                    if let ::core::result::Result::Err(__error) = __result {
                        let __shrunk = $crate::test_runner::shrink_failure(
                            &__config,
                            __rng.take_log(),
                            __error,
                            __debug,
                            &mut __run_case,
                        );
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}\n  minimal failing inputs (after {} shrink runs): {}",
                            stringify!($name),
                            __case,
                            __runner.cases(),
                            __shrunk.error,
                            __shrunk.iters,
                            __shrunk.debug,
                        );
                    }
                }
            }
        )*
    };
}

/// Renders a caught panic payload as a message (shrinking support).
#[doc(hidden)]
pub fn __panic_payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Uniform (or `weight =>`-weighted) choice among strategies of one value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($arm)),)+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm),)+
        ])
    };
}

/// Asserts inside a `proptest!` body, reporting the generated inputs on
/// failure instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "{}\n  left: `{:?}`\n right: `{:?}`",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`, both: `{:?}`",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod macro_tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    static FAIL_CASES: AtomicUsize = AtomicUsize::new(0);
    static SEEN: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    proptest! {
        #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

        // Meta attributes pass through; the runner really loops and
        // reports the failing case index.
        #[test]
        #[should_panic(expected = "failed at case 5")]
        fn failure_reports_the_case_index(x in 0u64..1000) {
            let _ = x;
            let case = FAIL_CASES.fetch_add(1, Ordering::SeqCst);
            prop_assert!(case < 5, "boom at case {case}");
        }

        #[test]
        fn tuple_patterns_and_multiple_args((a, b) in (0u32..10, 10u32..20), c in 0usize..3) {
            prop_assert!(a < 10);
            prop_assert!((10..20).contains(&b));
            prop_assert!(c < 3);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn generated_values_vary_across_cases(x in 0u64..u64::MAX) {
            let mut seen = SEEN.lock().unwrap();
            seen.push(x);
            if seen.len() == 10 {
                let mut unique = seen.clone();
                unique.sort_unstable();
                unique.dedup();
                prop_assert!(unique.len() > 8, "only {} distinct draws", unique.len());
            }
        }

        // Shrinking finds the boundary: the minimal failing input for
        // "fails iff x >= 1000" is exactly 1000, so the report must
        // carry it rather than whatever large case failed first.
        #[test]
        #[should_panic(expected = "minimal failing inputs (after")]
        fn integer_failures_shrink_to_the_boundary(x in 0u64..1_000_000) {
            prop_assert!(x < 1000, "x too big");
        }

        // A failing vector case shrinks to the shortest, smallest vec
        // that still fails (here: any vec of length >= 3 fails, so the
        // minimum is [0, 0, 0]).
        #[test]
        #[should_panic(expected = "[0, 0, 0]")]
        fn vec_failures_shrink_to_minimal_length(v in crate::collection::vec(0u32..100, 0..20)) {
            prop_assert!(v.len() < 3, "vec too long");
        }

        // Plain `assert!` panics inside the body shrink exactly like
        // `prop_assert!` failures.
        #[test]
        #[should_panic(expected = "shrink runs): (500,)")]
        fn body_panics_are_shrunk_too(x in 0u64..100_000) {
            assert!(x < 500, "boom");
        }
    }
}
