//! Value-generation strategies (upstream's `proptest::strategy`),
//! without shrinking: a [`Strategy`] is anything that can produce a value
//! from a [`TestRng`].

use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and generates
    /// from the result (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into a branch case, applied up to `depth`
    /// levels. `desired_size` and `expected_branch_size` are accepted for
    /// upstream signature compatibility; the shim biases each level
    /// toward leaves instead of tracking global size.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            // 1/3 leaf, 2/3 deeper: keeps sizes varied at every level.
            level = Union::weighted(vec![(1, base.clone()), (2, deeper)]).boxed();
        }
        level
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice among strategies of one value type (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<V> Union<V> {
    /// Uniform choice.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        Self::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Weighted choice; weights need not be normalized.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::from_seed(7)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..2_000 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let w = (-4i64..=4).generate(&mut r);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0u32..10, n).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = s.generate(&mut r);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut r = rng();
        let s = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[(s.generate(&mut r) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn recursion_terminates_and_varies() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut r = rng();
        let mut max_depth = 0;
        for _ in 0..300 {
            let t = s.generate(&mut r);
            let d = depth(&t);
            assert!(d <= 4, "depth bound respected: {d}");
            max_depth = max_depth.max(d);
        }
        assert!(max_depth > 1, "recursion actually recurses");
    }
}
