//! The case-running side: configuration, the per-test RNG, and the error
//! type `prop_assert!` produces.

/// How a property test runs. Field names match upstream so
/// `ProptestConfig { cases: 256, ..ProptestConfig::default() }` works.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Upper bound on shrink attempts after a failing case (see
    /// [`shrink_failure`]).
    pub max_shrink_iters: u32,
    /// Accepted for upstream compatibility; unused.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            max_global_rejects: 65_536,
        }
    }
}

/// A failed property (carries the formatted assertion message).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Drives one `proptest!`-declared test: hands out per-case RNGs.
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
}

impl TestRunner {
    /// A runner for `config`. The base seed is fixed (deterministic runs)
    /// unless `PROPTEST_RNG_SEED` is set in the environment.
    pub fn new(config: ProptestConfig) -> Self {
        let seed = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_D00D);
        TestRunner { config, seed }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The RNG for one case: seeded from the test name and case index so
    /// every test sees an independent, reproducible stream.
    pub fn rng_for(&self, test_name: &str, case: u32) -> TestRng {
        let mut h = self.seed;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        TestRng::from_seed(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// The generation RNG (SplitMix64 — tiny, fast, and plenty for tests).
///
/// Every draw is recorded in a log, and an RNG can be built to *replay*
/// a (possibly mutated) log instead of generating fresh randomness —
/// the shrinking machinery's substrate. Replay past the end of the log
/// yields `0`, the minimal draw, so truncated logs generate minimal
/// suffixes. `below` maps draws to values monotonically, so lowering a
/// draw can only lower the generated value: halving draws halves
/// integers, shortens collections, and picks earlier `prop_oneof!`
/// arms, all while staying inside every strategy's constraints.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
    /// When set, draws replay this log (padded with 0) instead of
    /// advancing `state`.
    replay: Option<Vec<u64>>,
    pos: usize,
    /// Log of every draw handed out, in order.
    log: Vec<u64>,
}

impl TestRng {
    /// An RNG at `seed`.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed,
            replay: None,
            pos: 0,
            log: Vec::new(),
        }
    }

    /// An RNG that replays `draws` (then yields 0 forever).
    pub fn replaying(draws: Vec<u64>) -> Self {
        TestRng {
            state: 0,
            replay: Some(draws),
            pos: 0,
            log: Vec::new(),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let v = match &self.replay {
            Some(draws) => {
                let v = draws.get(self.pos).copied().unwrap_or(0);
                self.pos += 1;
                v
            }
            None => {
                self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
        };
        self.log.push(v);
        v
    }

    /// Takes the draw log accumulated so far (resets it).
    pub fn take_log(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.log)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    ///
    /// Multiply-shift: monotone in the raw draw, which is what lets the
    /// shrinker lower values by lowering draws.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// One case execution's outcome: the property result plus the generated
/// inputs' `Debug` rendering.
pub type CaseOutcome = (Result<(), TestCaseError>, String);

/// A minimized counterexample: the draws, the error and `Debug`
/// rendering of the smallest failing case found, and how many shrink
/// attempts were spent.
pub struct ShrinkResult {
    /// Draw log of the minimal failing case.
    pub draws: Vec<u64>,
    /// The failure it produced.
    pub error: TestCaseError,
    /// `Debug` rendering of its generated inputs.
    pub debug: String,
    /// Shrink attempts executed (bounded by `max_shrink_iters`).
    pub iters: u32,
}

/// Minimizes a failing case by halving its raw draws toward zero.
///
/// `run` executes one case against the given RNG and reports the
/// outcome plus the inputs' `Debug` rendering. Starting from the
/// recorded failing log, each draw position is first zeroed and — if
/// the property then passes — binary-searched for the smallest value
/// that still fails; the canonical log of every accepted candidate is
/// adopted (so draws that stop being consumed disappear). Passes repeat
/// until a fixed point or until `max_shrink_iters` runs are spent.
pub fn shrink_failure(
    config: &ProptestConfig,
    draws: Vec<u64>,
    error: TestCaseError,
    debug: String,
    run: &mut dyn FnMut(&mut TestRng) -> CaseOutcome,
) -> ShrinkResult {
    let mut best = ShrinkResult {
        draws,
        error,
        debug,
        iters: 0,
    };
    let budget = config.max_shrink_iters;
    // One shrink attempt: replay `draws`, keep it if it still fails.
    // (A flaky pass — e.g. a concurrency property — just rejects the
    // candidate; the kept counterexample is always a real failure.)
    fn attempt(
        draws: Vec<u64>,
        run: &mut dyn FnMut(&mut TestRng) -> CaseOutcome,
    ) -> Option<(Vec<u64>, TestCaseError, String)> {
        let mut rng = TestRng::replaying(draws);
        let (result, debug) = run(&mut rng);
        match result {
            Err(e) => Some((rng.take_log(), e, debug)),
            Ok(()) => None,
        }
    }
    let mut improved = true;
    while improved && best.iters < budget {
        improved = false;
        let mut i = 0;
        while i < best.draws.len() && best.iters < budget {
            let original = best.draws[i];
            if original == 0 {
                i += 1;
                continue;
            }
            // Try the minimal draw first; most shrinks end here.
            let mut candidate = best.draws.clone();
            candidate[i] = 0;
            best.iters += 1;
            if let Some((draws, error, debug)) = attempt(candidate, run) {
                best.draws = draws;
                best.error = error;
                best.debug = debug;
                improved = true;
                i += 1;
                continue;
            }
            // Binary-search the smallest still-failing draw at `i`.
            // (An accepted candidate's canonical log may be shorter
            // than the old one — re-check the bound each round.)
            let (mut passes, mut fails) = (0u64, original);
            while passes + 1 < fails && best.iters < budget && i < best.draws.len() {
                let mid = passes + (fails - passes) / 2;
                let mut candidate = best.draws.clone();
                candidate[i] = mid;
                best.iters += 1;
                match attempt(candidate, run) {
                    Some((draws, error, debug)) => {
                        fails = mid;
                        best.draws = draws;
                        best.error = error;
                        best.debug = debug;
                    }
                    None => passes = mid,
                }
            }
            if fails < original {
                improved = true;
            }
            i += 1;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_case_rngs_are_reproducible() {
        let runner = TestRunner::new(ProptestConfig::default());
        let mut a = runner.rng_for("t", 3);
        let mut b = runner.rng_for("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = runner.rng_for("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(1);
        for bound in [1u64, 2, 3, 17, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn config_literal_update_syntax_works() {
        let cfg = ProptestConfig {
            cases: 48,
            ..ProptestConfig::default()
        };
        assert_eq!(cfg.cases, 48);
    }
}
