//! The case-running side: configuration, the per-test RNG, and the error
//! type `prop_assert!` produces.

/// How a property test runs. Field names match upstream so
/// `ProptestConfig { cases: 256, ..ProptestConfig::default() }` works.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for upstream compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for upstream compatibility; unused.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            max_global_rejects: 65_536,
        }
    }
}

/// A failed property (carries the formatted assertion message).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Drives one `proptest!`-declared test: hands out per-case RNGs.
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
}

impl TestRunner {
    /// A runner for `config`. The base seed is fixed (deterministic runs)
    /// unless `PROPTEST_RNG_SEED` is set in the environment.
    pub fn new(config: ProptestConfig) -> Self {
        let seed = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_D00D);
        TestRunner { config, seed }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The RNG for one case: seeded from the test name and case index so
    /// every test sees an independent, reproducible stream.
    pub fn rng_for(&self, test_name: &str, case: u32) -> TestRng {
        let mut h = self.seed;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        TestRng::from_seed(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// The generation RNG (SplitMix64 — tiny, fast, and plenty for tests).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG at `seed`.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_case_rngs_are_reproducible() {
        let runner = TestRunner::new(ProptestConfig::default());
        let mut a = runner.rng_for("t", 3);
        let mut b = runner.rng_for("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = runner.rng_for("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(1);
        for bound in [1u64, 2, 3, 17, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn config_literal_update_syntax_works() {
        let cfg = ProptestConfig {
            cases: 48,
            ..ProptestConfig::default()
        };
        assert_eq!(cfg.cases, 48);
    }
}
