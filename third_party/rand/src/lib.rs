//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides exactly the API surface the workspace uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`] —
//! backed by xoshiro256** seeded through SplitMix64. Deterministic for a
//! given seed (which is all the workloads require), but the streams are
//! **not** bit-compatible with upstream `rand`.

#![forbid(unsafe_code)]

/// Types that can be sampled uniformly from an RNG (the `Standard`
/// distribution in upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (uniform_u128(rng, span) as i128)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (uniform_u128(rng, span) as i128)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` via Lemire-style widening reduction
/// (`span` of 0 means the full 2^64 range collapsed — not reachable from
/// the integer range impls above).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span > u64::MAX as u128 {
        // Only reachable from 128-bit-wide spans, which the integer
        // impls cannot produce for types ≤ 64 bits... except u64/i64
        // full-range inclusive; handle by rejection-free composition.
        let hi = uniform_u128(rng, span >> 64) << 64;
        return hi | rng.next_u64() as u128;
    }
    (rng.next_u64() as u128 * span) >> 64
}

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling layer over [`RngCore`] (upstream `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs that can be built from seeds.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard RNG: xoshiro256** (Blackman & Vigna).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// RNG module layout mirroring upstream `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_cover_without_escaping() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 9];
        for _ in 0..1_000 {
            let v = rng.gen_range(4..=12);
            assert!((4..=12).contains(&v));
            seen[(v - 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 4..=12 reachable");
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(0..22);
            assert!(v < 22);
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn works_through_mut_references() {
        fn draw(rng: &mut impl Rng) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = draw(&mut rng);
        assert!(v < 10);
    }
}
